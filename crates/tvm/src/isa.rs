//! The instruction set of the tiny virtual machine.
//!
//! The ISA is deliberately small but covers everything the replay-analysis
//! pipeline needs from a "real" machine:
//!
//! * plain loads and stores over a flat word-addressed memory,
//! * *lock-prefixed* atomic read-modify-write instructions (the operations
//!   iDNA recognizes as synchronization and marks with a sequencer),
//! * system calls (the other sequencer source),
//! * arithmetic, conditional branches, calls, and faults.
//!
//! Addresses and register values are `u64` words. A memory operand is always
//! `base register + immediate offset`.

use std::fmt;

/// Number of general-purpose registers per thread.
pub const NUM_REGS: usize = 16;

/// A general-purpose register, `r0` through `r15`.
///
/// # Examples
///
/// ```
/// use tvm::isa::Reg;
/// let r = Reg::new(3);
/// assert_eq!(r.index(), 3);
/// assert_eq!(r.to_string(), "r3");
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    pub const R0: Reg = Reg(0);
    pub const R1: Reg = Reg(1);
    pub const R2: Reg = Reg(2);
    pub const R3: Reg = Reg(3);
    pub const R4: Reg = Reg(4);
    pub const R5: Reg = Reg(5);
    pub const R6: Reg = Reg(6);
    pub const R7: Reg = Reg(7);
    pub const R8: Reg = Reg(8);
    pub const R9: Reg = Reg(9);
    pub const R10: Reg = Reg(10);
    pub const R11: Reg = Reg(11);
    pub const R12: Reg = Reg(12);
    pub const R13: Reg = Reg(13);
    pub const R14: Reg = Reg(14);
    pub const R15: Reg = Reg(15);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_REGS`.
    #[must_use]
    pub const fn new(index: u8) -> Self {
        assert!((index as usize) < NUM_REGS, "register index out of range");
        Reg(index)
    }

    /// Creates a register from its index, returning `None` when out of range.
    #[must_use]
    pub const fn try_new(index: u8) -> Option<Self> {
        if (index as usize) < NUM_REGS {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// The register's index, `0..NUM_REGS`.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Binary arithmetic/logical operations.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Unsigned division. Dividing by zero raises [`Fault::DivideByZero`].
    ///
    /// [`Fault::DivideByZero`]: crate::machine::Fault::DivideByZero
    Div,
    /// Unsigned remainder. A zero divisor raises a fault like [`BinOp::Div`].
    Rem,
    And,
    Or,
    Xor,
    /// Logical shift left (shift amount taken modulo 64).
    Shl,
    /// Logical shift right (shift amount taken modulo 64).
    Shr,
}

impl BinOp {
    /// All binary operations, useful for exhaustive testing.
    pub const ALL: [BinOp; 10] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
    ];

    /// The mnemonic used by the assembler.
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        }
    }

    /// Applies the operation to two word values.
    ///
    /// Division and remainder by zero return `None` (the interpreter turns
    /// this into a machine fault). All arithmetic wraps.
    #[must_use]
    pub fn apply(self, lhs: u64, rhs: u64) -> Option<u64> {
        Some(match self {
            BinOp::Add => lhs.wrapping_add(rhs),
            BinOp::Sub => lhs.wrapping_sub(rhs),
            BinOp::Mul => lhs.wrapping_mul(rhs),
            BinOp::Div => lhs.checked_div(rhs)?,
            BinOp::Rem => lhs.checked_rem(rhs)?,
            BinOp::And => lhs & rhs,
            BinOp::Or => lhs | rhs,
            BinOp::Xor => lhs ^ rhs,
            BinOp::Shl => lhs.wrapping_shl((rhs % 64) as u32),
            BinOp::Shr => lhs.wrapping_shr((rhs % 64) as u32),
        })
    }
}

/// Branch conditions, comparing two registers as unsigned words.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Cond {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Cond {
    /// All conditions, useful for exhaustive testing.
    pub const ALL: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge];

    /// The mnemonic used by the assembler (`beq`, `bne`, ...).
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::Lt => "blt",
            Cond::Le => "ble",
            Cond::Gt => "bgt",
            Cond::Ge => "bge",
        }
    }

    /// Evaluates the condition on two unsigned words.
    #[must_use]
    pub fn eval(self, lhs: u64, rhs: u64) -> bool {
        match self {
            Cond::Eq => lhs == rhs,
            Cond::Ne => lhs != rhs,
            Cond::Lt => lhs < rhs,
            Cond::Le => lhs <= rhs,
            Cond::Gt => lhs > rhs,
            Cond::Ge => lhs >= rhs,
        }
    }
}

/// Atomic read-modify-write operations (the "lock-prefixed" instructions).
///
/// Executing one of these logs an iDNA *sequencer*, exactly like a
/// lock-prefixed x86 instruction does in the paper.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum RmwOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    /// Atomic exchange: the memory word is replaced by the operand and the
    /// old word is returned.
    Xchg,
}

impl RmwOp {
    /// All RMW operations, useful for exhaustive testing.
    pub const ALL: [RmwOp; 6] =
        [RmwOp::Add, RmwOp::Sub, RmwOp::And, RmwOp::Or, RmwOp::Xor, RmwOp::Xchg];

    /// The mnemonic used by the assembler (evoking the x86 `lock` prefix).
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            RmwOp::Add => "lock.add",
            RmwOp::Sub => "lock.sub",
            RmwOp::And => "lock.and",
            RmwOp::Or => "lock.or",
            RmwOp::Xor => "lock.xor",
            RmwOp::Xchg => "xchg",
        }
    }

    /// Computes the new memory value from the old value and the operand.
    #[must_use]
    pub fn apply(self, old: u64, operand: u64) -> u64 {
        match self {
            RmwOp::Add => old.wrapping_add(operand),
            RmwOp::Sub => old.wrapping_sub(operand),
            RmwOp::And => old & operand,
            RmwOp::Or => old | operand,
            RmwOp::Xor => old ^ operand,
            RmwOp::Xchg => operand,
        }
    }
}

/// System calls.
///
/// Every system call logs a sequencer (matching iDNA's behaviour for system
/// interactions) and returns a result in `r0`. Arguments are taken from `r0`
/// and `r1`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum SysCall {
    /// Allocate `r0` words of heap memory; returns the base address in `r0`.
    Alloc,
    /// Free the allocation whose base address is in `r0`. Freeing an address
    /// that is not a live allocation raises [`Fault::InvalidFree`].
    ///
    /// [`Fault::InvalidFree`]: crate::machine::Fault::InvalidFree
    Free,
    /// Append the value in `r0` to the machine's output stream.
    Print,
    /// Return the calling thread's id in `r0`.
    Tid,
    /// Scheduling hint; also a sequencer point. Returns 0.
    Yield,
    /// A no-op system call, used purely to create a sequencing point.
    Nop,
}

impl SysCall {
    /// All system calls, useful for exhaustive testing.
    pub const ALL: [SysCall; 6] =
        [SysCall::Alloc, SysCall::Free, SysCall::Print, SysCall::Tid, SysCall::Yield, SysCall::Nop];

    /// The name used by the assembler, e.g. `sys.alloc`.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            SysCall::Alloc => "alloc",
            SysCall::Free => "free",
            SysCall::Print => "print",
            SysCall::Tid => "tid",
            SysCall::Yield => "yield",
            SysCall::Nop => "nop",
        }
    }
}

/// A single machine instruction with branch targets already resolved to
/// absolute instruction indices.
///
/// Programs are built through [`ProgramBuilder`] or assembled from text with
/// [`asm::assemble`]; both resolve symbolic labels to `usize` targets.
///
/// [`ProgramBuilder`]: crate::builder::ProgramBuilder
/// [`asm::assemble`]: crate::asm::assemble
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `dst <- imm`
    MovImm { dst: Reg, imm: u64 },
    /// `dst <- src`
    Mov { dst: Reg, src: Reg },
    /// `dst <- lhs op rhs`
    Bin { op: BinOp, dst: Reg, lhs: Reg, rhs: Reg },
    /// `dst <- lhs op imm`
    BinImm { op: BinOp, dst: Reg, lhs: Reg, imm: u64 },
    /// `dst <- mem[base + offset]`
    Load { dst: Reg, base: Reg, offset: i64 },
    /// `mem[base + offset] <- src`
    Store { src: Reg, base: Reg, offset: i64 },
    /// Atomic `dst <- mem[base+offset]; mem[base+offset] <- op(old, src)`.
    /// Logs a sequencer.
    AtomicRmw { op: RmwOp, dst: Reg, base: Reg, offset: i64, src: Reg },
    /// Atomic compare-and-swap: if `mem[base+offset] == expected` then the
    /// word becomes `new` and `dst <- 1`, else `dst <- 0`. The old memory
    /// word is left in `expected`'s role only conceptually; `dst` receives
    /// the success flag. Logs a sequencer.
    AtomicCas { dst: Reg, base: Reg, offset: i64, expected: Reg, new: Reg },
    /// Memory fence. Logs a sequencer (it is a synchronization instruction).
    Fence,
    /// Unconditional jump to an absolute instruction index.
    Jump { target: usize },
    /// Conditional branch comparing two registers.
    Branch { cond: Cond, lhs: Reg, rhs: Reg, target: usize },
    /// Call: pushes the return address on the thread-private call stack.
    Call { target: usize },
    /// Return to the most recent call site. An empty call stack faults.
    Ret,
    /// System call; see [`SysCall`]. Logs a sequencer.
    Syscall { call: SysCall },
    /// Terminate the thread.
    Halt,
}

impl Instr {
    /// Whether executing this instruction logs an iDNA sequencer
    /// (synchronization instructions and system calls; see §3.2 of the
    /// paper).
    #[must_use]
    pub fn is_sequencer_point(&self) -> bool {
        matches!(
            self,
            Instr::AtomicRmw { .. }
                | Instr::AtomicCas { .. }
                | Instr::Fence
                | Instr::Syscall { .. }
        )
    }

    /// Whether this instruction reads or writes data memory.
    #[must_use]
    pub fn touches_memory(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. }
                | Instr::Store { .. }
                | Instr::AtomicRmw { .. }
                | Instr::AtomicCas { .. }
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::MovImm { dst, imm } => write!(f, "movi {dst}, {imm}"),
            Instr::Mov { dst, src } => write!(f, "mov {dst}, {src}"),
            Instr::Bin { op, dst, lhs, rhs } => {
                write!(f, "{} {dst}, {lhs}, {rhs}", op.mnemonic())
            }
            Instr::BinImm { op, dst, lhs, imm } => {
                write!(f, "{}i {dst}, {lhs}, {imm}", op.mnemonic())
            }
            Instr::Load { dst, base, offset } => write!(f, "ld {dst}, [{base}{offset:+}]"),
            Instr::Store { src, base, offset } => write!(f, "st [{base}{offset:+}], {src}"),
            Instr::AtomicRmw { op, dst, base, offset, src } => {
                write!(f, "{} {dst}, [{base}{offset:+}], {src}", op.mnemonic())
            }
            Instr::AtomicCas { dst, base, offset, expected, new } => {
                write!(f, "cas {dst}, [{base}{offset:+}], {expected}, {new}")
            }
            Instr::Fence => write!(f, "fence"),
            Instr::Jump { target } => write!(f, "jmp @{target}"),
            Instr::Branch { cond, lhs, rhs, target } => {
                write!(f, "{} {lhs}, {rhs}, @{target}", cond.mnemonic())
            }
            Instr::Call { target } => write!(f, "call @{target}"),
            Instr::Ret => write!(f, "ret"),
            Instr::Syscall { call } => write!(f, "sys.{}", call.name()),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip_and_display() {
        for i in 0..NUM_REGS as u8 {
            let r = Reg::new(i);
            assert_eq!(r.index(), i as usize);
            assert_eq!(r.to_string(), format!("r{i}"));
        }
        assert!(Reg::try_new(16).is_none());
        assert_eq!(Reg::try_new(15), Some(Reg::R15));
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn reg_new_out_of_range_panics() {
        let _ = Reg::new(16);
    }

    #[test]
    fn binop_apply_basics() {
        assert_eq!(BinOp::Add.apply(2, 3), Some(5));
        assert_eq!(BinOp::Sub.apply(2, 3), Some(u64::MAX));
        assert_eq!(BinOp::Mul.apply(1 << 32, 1 << 32), Some(0));
        assert_eq!(BinOp::Div.apply(7, 2), Some(3));
        assert_eq!(BinOp::Div.apply(7, 0), None);
        assert_eq!(BinOp::Rem.apply(7, 0), None);
        assert_eq!(BinOp::Shl.apply(1, 65), Some(2));
        assert_eq!(BinOp::Shr.apply(4, 1), Some(2));
        assert_eq!(BinOp::Xor.apply(0b1100, 0b1010), Some(0b0110));
    }

    #[test]
    fn cond_eval_matches_semantics() {
        assert!(Cond::Eq.eval(4, 4));
        assert!(Cond::Ne.eval(4, 5));
        assert!(Cond::Lt.eval(4, 5));
        assert!(Cond::Le.eval(4, 4));
        assert!(Cond::Gt.eval(5, 4));
        assert!(Cond::Ge.eval(5, 5));
        assert!(!Cond::Lt.eval(5, 4));
    }

    #[test]
    fn rmw_apply_matches_semantics() {
        assert_eq!(RmwOp::Add.apply(10, 5), 15);
        assert_eq!(RmwOp::Sub.apply(10, 5), 5);
        assert_eq!(RmwOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(RmwOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(RmwOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(RmwOp::Xchg.apply(10, 5), 5);
    }

    #[test]
    fn sequencer_points_are_sync_and_syscalls() {
        assert!(Instr::Fence.is_sequencer_point());
        assert!(Instr::Syscall { call: SysCall::Print }.is_sequencer_point());
        assert!(Instr::AtomicRmw {
            op: RmwOp::Add,
            dst: Reg::R0,
            base: Reg::R1,
            offset: 0,
            src: Reg::R2
        }
        .is_sequencer_point());
        assert!(!Instr::Load { dst: Reg::R0, base: Reg::R1, offset: 0 }.is_sequencer_point());
        assert!(!Instr::Halt.is_sequencer_point());
    }

    #[test]
    fn display_is_stable() {
        let i = Instr::Load { dst: Reg::R1, base: Reg::R2, offset: -8 };
        assert_eq!(i.to_string(), "ld r1, [r2-8]");
        let i = Instr::Branch { cond: Cond::Ne, lhs: Reg::R0, rhs: Reg::R3, target: 17 };
        assert_eq!(i.to_string(), "bne r0, r3, @17");
    }
}
