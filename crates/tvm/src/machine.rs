//! Machine state: threads, registers, faults, and the machine container.

use std::fmt;
use std::sync::Arc;

use crate::isa::NUM_REGS;
use crate::memory::Memory;
use crate::predecode::DecodedProgram;
use crate::program::Program;

/// Maximum call-stack depth per thread.
pub const MAX_CALL_DEPTH: usize = 256;

/// A machine fault. Faults terminate the faulting thread (only), mirroring a
/// crashing access violation in the paper's setting.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Access to an address that is neither a global nor inside a live heap
    /// allocation.
    InvalidAccess { addr: u64 },
    /// Access to memory that has been freed.
    UseAfterFree { addr: u64 },
    /// `free` of an address that is not a live allocation base (including
    /// double frees).
    InvalidFree { addr: u64 },
    /// Integer division or remainder by zero.
    DivideByZero,
    /// Call-stack overflow (runaway recursion).
    CallStackOverflow,
    /// `ret` with an empty call stack.
    CallStackUnderflow,
    /// The program counter left the program text.
    PcOutOfRange { pc: usize },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::InvalidAccess { addr } => write!(f, "invalid access to {addr:#x}"),
            Fault::UseAfterFree { addr } => write!(f, "use after free at {addr:#x}"),
            Fault::InvalidFree { addr } => write!(f, "invalid free of {addr:#x}"),
            Fault::DivideByZero => write!(f, "divide by zero"),
            Fault::CallStackOverflow => write!(f, "call stack overflow"),
            Fault::CallStackUnderflow => write!(f, "return with empty call stack"),
            Fault::PcOutOfRange { pc } => write!(f, "program counter out of range: {pc}"),
        }
    }
}

impl std::error::Error for Fault {}

/// Life-cycle state of a thread.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ThreadStatus {
    /// Can execute instructions.
    Ready,
    /// Executed `halt`.
    Halted,
    /// Terminated by a fault.
    Faulted(Fault),
}

impl ThreadStatus {
    /// Whether the thread can still run.
    #[must_use]
    pub fn is_ready(self) -> bool {
        matches!(self, ThreadStatus::Ready)
    }
}

/// The architectural state of one thread.
#[derive(Clone, Debug)]
pub struct ThreadState {
    tid: usize,
    regs: [u64; NUM_REGS],
    pc: usize,
    call_stack: Vec<usize>,
    status: ThreadStatus,
    /// Number of instructions this thread has executed.
    steps: u64,
    /// Timestamp of the sequencer logged at thread start.
    start_seq: u64,
    /// Timestamp of the sequencer logged when the thread terminated.
    end_seq: Option<u64>,
}

impl ThreadState {
    pub(crate) fn new(tid: usize, entry: usize, args: &[u64], start_seq: u64) -> Self {
        let mut regs = [0u64; NUM_REGS];
        for (i, &a) in args.iter().take(NUM_REGS).enumerate() {
            regs[i] = a;
        }
        ThreadState {
            tid,
            regs,
            pc: entry,
            call_stack: Vec::new(),
            status: ThreadStatus::Ready,
            steps: 0,
            start_seq,
            end_seq: None,
        }
    }

    /// The thread id.
    #[must_use]
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// The register file.
    #[must_use]
    pub fn regs(&self) -> &[u64; NUM_REGS] {
        &self.regs
    }

    /// Reads one register.
    #[must_use]
    pub fn reg(&self, r: crate::isa::Reg) -> u64 {
        self.regs[r.index()]
    }

    pub(crate) fn set_reg(&mut self, r: crate::isa::Reg, v: u64) {
        self.regs[r.index()] = v;
    }

    /// Reads a register by raw index (predecoded dispatch; `i < NUM_REGS`
    /// by construction).
    #[inline]
    pub(crate) fn reg_raw(&self, i: u8) -> u64 {
        self.regs[i as usize]
    }

    /// Writes a register by raw index (predecoded dispatch).
    #[inline]
    pub(crate) fn set_reg_raw(&mut self, i: u8, v: u64) {
        self.regs[i as usize] = v;
    }

    /// Current program counter.
    #[must_use]
    pub fn pc(&self) -> usize {
        self.pc
    }

    pub(crate) fn set_pc(&mut self, pc: usize) {
        self.pc = pc;
    }

    /// The call stack of return addresses.
    #[must_use]
    pub fn call_stack(&self) -> &[usize] {
        &self.call_stack
    }

    pub(crate) fn call_stack_mut(&mut self) -> &mut Vec<usize> {
        &mut self.call_stack
    }

    /// Current status.
    #[must_use]
    pub fn status(&self) -> ThreadStatus {
        self.status
    }

    pub(crate) fn set_status(&mut self, s: ThreadStatus) {
        self.status = s;
    }

    /// Instructions executed so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    pub(crate) fn bump_steps(&mut self) -> u64 {
        let s = self.steps;
        self.steps += 1;
        s
    }

    /// Timestamp of the thread-start sequencer.
    #[must_use]
    pub fn start_seq(&self) -> u64 {
        self.start_seq
    }

    /// Timestamp of the thread-end sequencer, once terminated.
    #[must_use]
    pub fn end_seq(&self) -> Option<u64> {
        self.end_seq
    }

    pub(crate) fn set_end_seq(&mut self, ts: u64) {
        self.end_seq = Some(ts);
    }
}

/// One value printed by a thread via [`SysCall::Print`].
///
/// [`SysCall::Print`]: crate::isa::SysCall::Print
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct OutputRecord {
    pub tid: usize,
    pub value: u64,
}

/// A complete machine: program, shared memory, threads, output.
///
/// # Examples
///
/// ```
/// use tvm::builder::ProgramBuilder;
/// use tvm::machine::Machine;
/// use tvm::scheduler::{RunConfig, SchedulePolicy};
///
/// let mut b = ProgramBuilder::new();
/// b.thread("main");
/// b.movi(tvm::isa::Reg::R0, 41)
///  .addi(tvm::isa::Reg::R0, tvm::isa::Reg::R0, 1)
///  .print(tvm::isa::Reg::R0)
///  .halt();
/// let program = b.build();
/// let mut m = Machine::new(program.into());
/// tvm::scheduler::run(&mut m, &RunConfig::round_robin(100), &mut ());
/// assert_eq!(m.output()[0].value, 42);
/// # let _ = SchedulePolicy::Random { seed: 0 };
/// ```
#[derive(Clone, Debug)]
pub struct Machine {
    decoded: Arc<DecodedProgram>,
    mem: Memory,
    threads: Vec<ThreadState>,
    output: Vec<OutputRecord>,
    global_step: u64,
    next_seq: u64,
}

impl Machine {
    /// Creates a machine for `program` with all threads ready at their
    /// entry points, globals initialized, and thread-start sequencers
    /// assigned in thread-id order.
    ///
    /// The program is predecoded as part of construction; when several
    /// machines (or pipeline stages) execute the same program, build one
    /// [`DecodedProgram`] and share it via [`Machine::with_decoded`].
    #[must_use]
    pub fn new(program: Arc<Program>) -> Self {
        Machine::with_decoded(Arc::new(DecodedProgram::new(program)))
    }

    /// Creates a machine over an already predecoded program, sharing the
    /// decode work across machines.
    #[must_use]
    pub fn with_decoded(decoded: Arc<DecodedProgram>) -> Self {
        let program = decoded.program();
        let mut mem = Memory::new();
        for (&addr, &val) in program.globals() {
            mem.write(addr, val).expect("global initializer outside globals region");
        }
        let mut next_seq = 0;
        let threads = program
            .threads()
            .iter()
            .enumerate()
            .map(|(tid, spec)| {
                let ts = next_seq;
                next_seq += 1;
                ThreadState::new(tid, spec.entry, &spec.args, ts)
            })
            .collect();
        Machine { decoded, mem, threads, output: Vec::new(), global_step: 0, next_seq }
    }

    /// The program being executed.
    #[must_use]
    pub fn program(&self) -> &Arc<Program> {
        self.decoded.program()
    }

    /// The predecoded form of the program.
    #[must_use]
    pub fn decoded(&self) -> &Arc<DecodedProgram> {
        &self.decoded
    }

    /// Shared memory.
    #[must_use]
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    pub(crate) fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// All threads.
    #[must_use]
    pub fn threads(&self) -> &[ThreadState] {
        &self.threads
    }

    /// One thread's state.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    #[must_use]
    pub fn thread(&self, tid: usize) -> &ThreadState {
        &self.threads[tid]
    }

    pub(crate) fn thread_mut(&mut self, tid: usize) -> &mut ThreadState {
        &mut self.threads[tid]
    }

    /// Thread ids that are still ready to run.
    #[must_use]
    pub fn runnable(&self) -> Vec<usize> {
        self.threads.iter().filter(|t| t.status().is_ready()).map(ThreadState::tid).collect()
    }

    /// Whether every thread has terminated (halted or faulted).
    #[must_use]
    pub fn finished(&self) -> bool {
        self.threads.iter().all(|t| !t.status().is_ready())
    }

    /// The output stream produced by `sys.print` so far.
    #[must_use]
    pub fn output(&self) -> &[OutputRecord] {
        &self.output
    }

    pub(crate) fn push_output(&mut self, rec: OutputRecord) {
        self.output.push(rec);
    }

    /// Total instructions executed across all threads.
    #[must_use]
    pub fn global_step(&self) -> u64 {
        self.global_step
    }

    pub(crate) fn bump_global_step(&mut self) -> u64 {
        let s = self.global_step;
        self.global_step += 1;
        s
    }

    /// Next (unassigned) sequencer timestamp.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    pub(crate) fn take_seq(&mut self) -> u64 {
        let ts = self.next_seq;
        self.next_seq += 1;
        ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instr, Reg};
    use crate::program::ThreadSpec;
    use std::collections::HashMap;

    fn machine_with(threads: usize) -> Machine {
        let instrs = vec![Instr::Halt];
        let specs = (0..threads)
            .map(|i| ThreadSpec { name: format!("t{i}"), entry: 0, args: vec![i as u64] })
            .collect();
        let p = Program::from_parts(instrs, specs, HashMap::new(), HashMap::new());
        Machine::new(Arc::new(p))
    }

    #[test]
    fn start_sequencers_are_assigned_in_tid_order() {
        let m = machine_with(3);
        assert_eq!(m.thread(0).start_seq(), 0);
        assert_eq!(m.thread(1).start_seq(), 1);
        assert_eq!(m.thread(2).start_seq(), 2);
        assert_eq!(m.next_seq(), 3);
    }

    #[test]
    fn args_land_in_low_registers() {
        let m = machine_with(2);
        assert_eq!(m.thread(1).reg(Reg::R0), 1);
        assert_eq!(m.thread(1).reg(Reg::R1), 0);
    }

    #[test]
    fn runnable_and_finished() {
        let mut m = machine_with(2);
        assert_eq!(m.runnable(), vec![0, 1]);
        assert!(!m.finished());
        m.thread_mut(0).set_status(ThreadStatus::Halted);
        m.thread_mut(1).set_status(ThreadStatus::Faulted(Fault::DivideByZero));
        assert!(m.runnable().is_empty());
        assert!(m.finished());
    }

    #[test]
    fn globals_are_loaded() {
        let mut globals = HashMap::new();
        globals.insert(8u64, 99u64);
        let p = Program::from_parts(
            vec![Instr::Halt],
            vec![ThreadSpec { name: "t".into(), entry: 0, args: vec![] }],
            HashMap::new(),
            globals,
        );
        let m = Machine::new(Arc::new(p));
        assert_eq!(m.memory().peek(8), 99);
    }

    #[test]
    fn fault_display_is_informative() {
        assert_eq!(Fault::DivideByZero.to_string(), "divide by zero");
        assert!(Fault::InvalidAccess { addr: 0xdead }.to_string().contains("dead"));
    }
}
