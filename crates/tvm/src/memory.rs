//! Sparse word-addressed memory with a heap allocator and fault detection.
//!
//! The address space is split into two regions:
//!
//! * **Globals**: `0 .. GLOBAL_LIMIT`. Always mapped; this is where workload
//!   programs place their shared variables.
//! * **Heap**: `HEAP_BASE ..`. Mapped only while an allocation made through
//!   [`SysCall::Alloc`] is live. Accessing freed or never-allocated heap
//!   memory raises a fault — this is how use-after-free bugs (like the
//!   paper's reference-counting example, Figure 2) become observable.
//!
//! [`SysCall::Alloc`]: crate::isa::SysCall::Alloc

use std::collections::{BTreeMap, HashMap};

use crate::machine::Fault;
use crate::pagestore::PagedWords;

/// First address past the always-mapped globals region.
pub const GLOBAL_LIMIT: u64 = 0x1_0000;

/// Base address of the heap.
pub const HEAP_BASE: u64 = 0x10_0000;

/// Sparse word memory plus the heap allocator state.
///
/// Reads of mapped-but-never-written words return 0, mirroring zero-filled
/// pages.
///
/// # Examples
///
/// ```
/// use tvm::memory::Memory;
/// let mut mem = Memory::new();
/// assert_eq!(mem.read(0x10)?, 0);
/// mem.write(0x10, 42)?;
/// assert_eq!(mem.read(0x10)?, 42);
/// # Ok::<(), tvm::machine::Fault>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct Memory {
    /// Word contents, paged for spatial locality (the interpreter's hottest
    /// data structure after the register files).
    words: PagedWords,
    /// Live allocations: base address -> size in words.
    live: BTreeMap<u64, u64>,
    /// Bases that were freed (for better diagnostics on use-after-free).
    freed: BTreeMap<u64, u64>,
    next: u64,
}

impl Memory {
    /// Creates an empty memory with an empty heap.
    #[must_use]
    pub fn new() -> Self {
        Memory {
            words: PagedWords::new(),
            live: BTreeMap::new(),
            freed: BTreeMap::new(),
            next: HEAP_BASE,
        }
    }

    /// Reads the word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::InvalidAccess`] when `addr` is outside the globals
    /// region and not inside a live heap allocation.
    pub fn read(&self, addr: u64) -> Result<u64, Fault> {
        self.check(addr)?;
        Ok(self.words.get(addr))
    }

    /// Writes the word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::InvalidAccess`] under the same conditions as
    /// [`Memory::read`].
    pub fn write(&mut self, addr: u64, value: u64) -> Result<(), Fault> {
        self.check(addr)?;
        self.words.set(addr, value);
        Ok(())
    }

    /// Reads a word without a validity check (used by replay tooling that
    /// inspects raw images).
    #[must_use]
    pub fn peek(&self, addr: u64) -> u64 {
        self.words.get(addr)
    }

    /// Whether `addr` is currently mapped.
    #[must_use]
    pub fn is_mapped(&self, addr: u64) -> bool {
        self.check(addr).is_ok()
    }

    /// Allocates `size` words (at least one) and returns the base address.
    pub fn alloc(&mut self, size: u64) -> u64 {
        let size = size.max(1);
        let base = self.next;
        self.next = self.next + size + 1; // one-word red zone between allocations
        self.live.insert(base, size);
        self.freed.remove(&base);
        // Zero the allocation so recycled addresses (never recycled here, but
        // keep the invariant simple) read as fresh.
        for w in 0..size {
            self.words.set(base + w, 0);
        }
        base
    }

    /// Frees the allocation at `base`.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::InvalidFree`] when `base` is not the base address of a
    /// live allocation — including the double-free case.
    pub fn free(&mut self, base: u64) -> Result<(), Fault> {
        match self.live.remove(&base) {
            Some(size) => {
                self.freed.insert(base, size);
                for w in 0..size {
                    self.words.set(base + w, 0);
                }
                Ok(())
            }
            None => Err(Fault::InvalidFree { addr: base }),
        }
    }

    /// Iterates over all non-zero words, in unspecified order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.words.iter_nonzero()
    }

    /// A snapshot of the memory contents (non-zero words only).
    #[must_use]
    pub fn snapshot(&self) -> HashMap<u64, u64> {
        self.iter_nonzero().collect()
    }

    /// Number of live heap allocations.
    #[must_use]
    pub fn live_allocations(&self) -> usize {
        self.live.len()
    }

    fn check(&self, addr: u64) -> Result<(), Fault> {
        if addr < GLOBAL_LIMIT {
            return Ok(());
        }
        if addr >= HEAP_BASE {
            if let Some((base, size)) = self.live.range(..=addr).next_back() {
                if addr < base + size {
                    return Ok(());
                }
            }
            if let Some((base, size)) = self.freed.range(..=addr).next_back() {
                if addr < base + size {
                    return Err(Fault::UseAfterFree { addr });
                }
            }
        }
        Err(Fault::InvalidAccess { addr })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globals_region_always_mapped() {
        let mut mem = Memory::new();
        assert_eq!(mem.read(0).unwrap(), 0);
        mem.write(GLOBAL_LIMIT - 1, 7).unwrap();
        assert_eq!(mem.read(GLOBAL_LIMIT - 1).unwrap(), 7);
    }

    #[test]
    fn unmapped_gap_faults() {
        let mem = Memory::new();
        assert_eq!(mem.read(GLOBAL_LIMIT), Err(Fault::InvalidAccess { addr: GLOBAL_LIMIT }));
        assert_eq!(mem.read(HEAP_BASE), Err(Fault::InvalidAccess { addr: HEAP_BASE }));
    }

    #[test]
    fn alloc_free_lifecycle() {
        let mut mem = Memory::new();
        let a = mem.alloc(4);
        assert!(a >= HEAP_BASE);
        mem.write(a + 3, 9).unwrap();
        assert_eq!(mem.read(a + 3).unwrap(), 9);
        // Past the end of the allocation: fault.
        assert!(mem.read(a + 4).is_err());
        mem.free(a).unwrap();
        assert_eq!(mem.read(a), Err(Fault::UseAfterFree { addr: a }));
        // Double free is itself a fault (the paper's refcount bug).
        assert_eq!(mem.free(a), Err(Fault::InvalidFree { addr: a }));
    }

    #[test]
    fn allocations_do_not_overlap() {
        let mut mem = Memory::new();
        let a = mem.alloc(2);
        let b = mem.alloc(2);
        assert!(b >= a + 2);
        mem.write(a, 1).unwrap();
        mem.write(b, 2).unwrap();
        assert_eq!(mem.read(a).unwrap(), 1);
        assert_eq!(mem.read(b).unwrap(), 2);
        assert_eq!(mem.live_allocations(), 2);
    }

    #[test]
    fn zero_sized_alloc_rounds_up() {
        let mut mem = Memory::new();
        let a = mem.alloc(0);
        mem.write(a, 5).unwrap();
        assert_eq!(mem.read(a).unwrap(), 5);
    }

    #[test]
    fn freed_memory_reads_as_fault_not_zero() {
        let mut mem = Memory::new();
        let a = mem.alloc(1);
        mem.write(a, 77).unwrap();
        mem.free(a).unwrap();
        assert!(matches!(mem.read(a), Err(Fault::UseAfterFree { .. })));
    }

    #[test]
    fn snapshot_contains_only_nonzero() {
        let mut mem = Memory::new();
        mem.write(1, 0).unwrap();
        mem.write(2, 5).unwrap();
        let snap = mem.snapshot();
        assert!(!snap.contains_key(&1));
        assert_eq!(snap.get(&2), Some(&5));
    }
}
