//! # tvm — a tiny deterministic multi-threaded virtual machine
//!
//! `tvm` is the execution substrate for the `replay-race` reproduction of
//! *Automatically Classifying Benign and Harmful Data Races Using Replay
//! Analysis* (Narayanasamy et al., PLDI 2007). The paper instruments x86
//! binaries with iDNA; this crate plays the role of the bare machine:
//!
//! * a small RISC-like [ISA](isa) with plain loads/stores, **lock-prefixed
//!   atomic instructions**, and **system calls** — the two instruction
//!   classes iDNA marks with sequencers,
//! * [sparse word memory](memory) with a heap allocator that faults on
//!   use-after-free and double-free (so harmful races crash, as in the
//!   paper's Figure 2),
//! * per-thread architectural state and an [interpreter](exec) that reports
//!   every executed instruction to an [`exec::Observer`],
//! * [seeded, fully deterministic scheduling](scheduler) so recorded
//!   executions are reproducible.
//!
//! # Quickstart
//!
//! ```
//! use tvm::builder::ProgramBuilder;
//! use tvm::isa::Reg;
//! use tvm::machine::Machine;
//! use tvm::scheduler::{run, RunConfig};
//!
//! let mut b = ProgramBuilder::new();
//! b.thread("main");
//! b.movi(Reg::R0, 7).print(Reg::R0).halt();
//! let mut machine = Machine::new(b.build().into());
//! let summary = run(&mut machine, &RunConfig::round_robin(10), &mut ());
//! assert!(summary.completed);
//! assert_eq!(machine.output()[0].value, 7);
//! ```

pub mod asm;
pub mod builder;
pub mod encode;
pub mod exec;
pub mod fasthash;
pub mod isa;
pub mod machine;
pub mod memory;
pub mod pagestore;
pub mod predecode;
pub mod program;
pub mod rng;
pub mod scheduler;

pub use builder::ProgramBuilder;
pub use exec::{AccessKind, MemAccessEvent, NativeOutcome, Observer, StepInfo};
pub use isa::{Instr, Reg};
pub use machine::{Fault, Machine, ThreadStatus};
pub use predecode::{Decoded, DecodedProgram};
pub use program::{Program, ThreadSpec};
pub use scheduler::{run, run_native, run_reference, RunConfig, SchedulePolicy};
