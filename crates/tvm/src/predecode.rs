//! Predecoded programs: a one-time pass from [`Program`] to a flat,
//! cache-friendly instruction stream for the hot interpreter loops.
//!
//! Every stage of the replay-analysis pipeline — native execution,
//! recording, replay, and dual-order classification — bottoms out in the
//! same fetch/dispatch loop. [`DecodedProgram`] runs that loop over a dense
//! `Vec<Decoded>` instead of the builder-facing [`Instr`] enum:
//!
//! * operand fields are pre-split into raw register indices (`u8`) and
//!   immediates, so dispatch reads exactly the bytes it needs — a
//!   [`Decoded`] is 16 bytes, versus 40 for [`Instr`];
//! * jump/branch/call targets are pre-resolved to `u32` instruction
//!   indices (they are absolute in `Instr` already; predecoding narrows
//!   and revalidates them);
//! * per-pc properties the loops test on every step — is this a memory
//!   operation, a sequencer point, an atomic — are precomputed into a
//!   parallel flags array, replacing a 16-way `match` with one byte load.
//!
//! A `DecodedProgram` is built once per program and shared behind an [`Arc`]
//! by the interpreter, the scheduler, the recorder, the replayer, and the
//! classification virtual processor. Decoding is semantically lossless:
//! [`DecodedProgram::instr`] still exposes the original [`Instr`], and the
//! `decoded_roundtrips` test pins `Decoded` ↔ `Instr` equivalence.

use std::sync::Arc;

use crate::isa::{BinOp, Cond, Instr, Reg, RmwOp, SysCall};
use crate::program::Program;

/// Per-pc property bits, precomputed at decode time.
mod flag {
    /// The instruction reads or writes data memory.
    pub const MEMORY: u8 = 1 << 0;
    /// The instruction logs an iDNA sequencer (sync instruction or syscall).
    pub const SEQUENCER: u8 = 1 << 1;
    /// The instruction is a lock-prefixed atomic (RMW or CAS).
    pub const ATOMIC: u8 = 1 << 2;
}

/// One predecoded instruction: [`Instr`] with operand fields pre-split into
/// raw register indices and targets narrowed to `u32`.
///
/// Register fields hold indices `0..NUM_REGS` (guaranteed by construction
/// from a valid [`Instr`]); targets are in-range instruction indices or the
/// one-past-the-end pc, exactly as the source program had them.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Decoded {
    MovImm { dst: u8, imm: u64 },
    Mov { dst: u8, src: u8 },
    Bin { op: BinOp, dst: u8, lhs: u8, rhs: u8 },
    BinImm { op: BinOp, dst: u8, lhs: u8, imm: u64 },
    Load { dst: u8, base: u8, offset: i64 },
    Store { src: u8, base: u8, offset: i64 },
    AtomicRmw { op: RmwOp, dst: u8, base: u8, offset: i64, src: u8 },
    AtomicCas { dst: u8, base: u8, offset: i64, expected: u8, new: u8 },
    Fence,
    Jump { target: u32 },
    Branch { cond: Cond, lhs: u8, rhs: u8, target: u32 },
    Call { target: u32 },
    Ret,
    Syscall { call: SysCall },
    Halt,
}

impl Decoded {
    fn from_instr(instr: &Instr) -> Decoded {
        let r = |reg: Reg| reg.index() as u8;
        match *instr {
            Instr::MovImm { dst, imm } => Decoded::MovImm { dst: r(dst), imm },
            Instr::Mov { dst, src } => Decoded::Mov { dst: r(dst), src: r(src) },
            Instr::Bin { op, dst, lhs, rhs } => {
                Decoded::Bin { op, dst: r(dst), lhs: r(lhs), rhs: r(rhs) }
            }
            Instr::BinImm { op, dst, lhs, imm } => {
                Decoded::BinImm { op, dst: r(dst), lhs: r(lhs), imm }
            }
            Instr::Load { dst, base, offset } => {
                Decoded::Load { dst: r(dst), base: r(base), offset }
            }
            Instr::Store { src, base, offset } => {
                Decoded::Store { src: r(src), base: r(base), offset }
            }
            Instr::AtomicRmw { op, dst, base, offset, src } => {
                Decoded::AtomicRmw { op, dst: r(dst), base: r(base), offset, src: r(src) }
            }
            Instr::AtomicCas { dst, base, offset, expected, new } => Decoded::AtomicCas {
                dst: r(dst),
                base: r(base),
                offset,
                expected: r(expected),
                new: r(new),
            },
            Instr::Fence => Decoded::Fence,
            Instr::Jump { target } => Decoded::Jump { target: narrow(target) },
            Instr::Branch { cond, lhs, rhs, target } => {
                Decoded::Branch { cond, lhs: r(lhs), rhs: r(rhs), target: narrow(target) }
            }
            Instr::Call { target } => Decoded::Call { target: narrow(target) },
            Instr::Ret => Decoded::Ret,
            Instr::Syscall { call } => Decoded::Syscall { call },
            Instr::Halt => Decoded::Halt,
        }
    }

    /// Reconstructs the source [`Instr`] (used by the round-trip test).
    #[must_use]
    pub fn to_instr(self) -> Instr {
        let r = |i: u8| Reg::new(i);
        match self {
            Decoded::MovImm { dst, imm } => Instr::MovImm { dst: r(dst), imm },
            Decoded::Mov { dst, src } => Instr::Mov { dst: r(dst), src: r(src) },
            Decoded::Bin { op, dst, lhs, rhs } => {
                Instr::Bin { op, dst: r(dst), lhs: r(lhs), rhs: r(rhs) }
            }
            Decoded::BinImm { op, dst, lhs, imm } => {
                Instr::BinImm { op, dst: r(dst), lhs: r(lhs), imm }
            }
            Decoded::Load { dst, base, offset } => {
                Instr::Load { dst: r(dst), base: r(base), offset }
            }
            Decoded::Store { src, base, offset } => {
                Instr::Store { src: r(src), base: r(base), offset }
            }
            Decoded::AtomicRmw { op, dst, base, offset, src } => {
                Instr::AtomicRmw { op, dst: r(dst), base: r(base), offset, src: r(src) }
            }
            Decoded::AtomicCas { dst, base, offset, expected, new } => Instr::AtomicCas {
                dst: r(dst),
                base: r(base),
                offset,
                expected: r(expected),
                new: r(new),
            },
            Decoded::Fence => Instr::Fence,
            Decoded::Jump { target } => Instr::Jump { target: target as usize },
            Decoded::Branch { cond, lhs, rhs, target } => {
                Instr::Branch { cond, lhs: r(lhs), rhs: r(rhs), target: target as usize }
            }
            Decoded::Call { target } => Instr::Call { target: target as usize },
            Decoded::Ret => Instr::Ret,
            Decoded::Syscall { call } => Instr::Syscall { call },
            Decoded::Halt => Instr::Halt,
        }
    }
}

fn narrow(target: usize) -> u32 {
    u32::try_from(target).expect("program text exceeds u32 instruction indices")
}

/// A program predecoded for dense dispatch; see the module docs.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use tvm::predecode::DecodedProgram;
/// use tvm::{ProgramBuilder, isa::Reg};
///
/// let mut b = ProgramBuilder::new();
/// b.thread("main");
/// b.movi(Reg::R0, 1).fence().halt();
/// let decoded = Arc::new(DecodedProgram::new(Arc::new(b.build())));
/// assert_eq!(decoded.len(), 3);
/// assert!(decoded.is_sequencer_point(1));
/// assert!(!decoded.is_sequencer_point(2));
/// ```
#[derive(Debug)]
pub struct DecodedProgram {
    program: Arc<Program>,
    ops: Vec<Decoded>,
    flags: Vec<u8>,
}

impl DecodedProgram {
    /// Predecodes `program` in one pass.
    #[must_use]
    pub fn new(program: Arc<Program>) -> Self {
        let ops: Vec<Decoded> = program.instrs().iter().map(Decoded::from_instr).collect();
        let flags = program
            .instrs()
            .iter()
            .map(|i| {
                let mut f = 0u8;
                if i.touches_memory() {
                    f |= flag::MEMORY;
                }
                if i.is_sequencer_point() {
                    f |= flag::SEQUENCER;
                }
                if matches!(i, Instr::AtomicRmw { .. } | Instr::AtomicCas { .. }) {
                    f |= flag::ATOMIC;
                }
                f
            })
            .collect();
        DecodedProgram { program, ops, flags }
    }

    /// The source program.
    #[must_use]
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The predecoded instruction at `pc`, or `None` past the end.
    #[inline]
    #[must_use]
    pub fn op(&self, pc: usize) -> Option<&Decoded> {
        self.ops.get(pc)
    }

    /// All predecoded instructions.
    #[must_use]
    pub fn ops(&self) -> &[Decoded] {
        &self.ops
    }

    /// The source instruction at `pc`, or `None` past the end.
    #[inline]
    #[must_use]
    pub fn instr(&self, pc: usize) -> Option<&Instr> {
        self.program.instrs().get(pc)
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Whether the instruction at `pc` logs a sequencer. Out-of-range pcs
    /// are not sequencer points.
    #[inline]
    #[must_use]
    pub fn is_sequencer_point(&self, pc: usize) -> bool {
        self.flags.get(pc).is_some_and(|&f| f & flag::SEQUENCER != 0)
    }

    /// Whether the instruction at `pc` reads or writes data memory.
    #[inline]
    #[must_use]
    pub fn touches_memory(&self, pc: usize) -> bool {
        self.flags.get(pc).is_some_and(|&f| f & flag::MEMORY != 0)
    }

    /// Whether the instruction at `pc` is a lock-prefixed atomic.
    #[inline]
    #[must_use]
    pub fn is_atomic(&self, pc: usize) -> bool {
        self.flags.get(pc).is_some_and(|&f| f & flag::ATOMIC != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::isa::NUM_REGS;

    /// A program exercising every instruction variant.
    fn kitchen_sink() -> Arc<Program> {
        let mut b = ProgramBuilder::new();
        b.thread("main");
        let func = b.fresh_label("func");
        let top = b.fresh_label("top");
        b.movi(Reg::R1, 7)
            .mov(Reg::R2, Reg::R1)
            .bin(BinOp::Add, Reg::R3, Reg::R1, Reg::R2)
            .bini(BinOp::Xor, Reg::R4, Reg::R3, 0xff)
            .store(Reg::R3, Reg::R15, 0x10)
            .load(Reg::R5, Reg::R15, 0x10)
            .atomic_rmw(RmwOp::Add, Reg::R6, Reg::R15, 0x10, Reg::R1)
            .cas(Reg::R7, Reg::R15, 0x10, Reg::R6, Reg::R1)
            .fence()
            .label(top)
            .branch(Cond::Ne, Reg::R0, Reg::R0, top)
            .call(func)
            .syscall(SysCall::Nop)
            .halt();
        b.label(func).ret();
        Arc::new(b.build())
    }

    #[test]
    fn decoded_roundtrips() {
        let program = kitchen_sink();
        let decoded = DecodedProgram::new(program.clone());
        assert_eq!(decoded.len(), program.len());
        for (pc, instr) in program.instrs().iter().enumerate() {
            assert_eq!(decoded.op(pc).unwrap().to_instr(), *instr, "pc {pc}");
            assert_eq!(decoded.instr(pc), Some(instr));
        }
        assert!(decoded.op(program.len()).is_none());
        assert!(decoded.instr(program.len()).is_none());
    }

    #[test]
    fn flags_match_instr_predicates() {
        let program = kitchen_sink();
        let decoded = DecodedProgram::new(program.clone());
        for (pc, instr) in program.instrs().iter().enumerate() {
            assert_eq!(decoded.is_sequencer_point(pc), instr.is_sequencer_point(), "pc {pc}");
            assert_eq!(decoded.touches_memory(pc), instr.touches_memory(), "pc {pc}");
            assert_eq!(
                decoded.is_atomic(pc),
                matches!(instr, Instr::AtomicRmw { .. } | Instr::AtomicCas { .. }),
                "pc {pc}"
            );
        }
        // Out of range: everything false.
        assert!(!decoded.is_sequencer_point(program.len()));
        assert!(!decoded.touches_memory(program.len()));
        assert!(!decoded.is_atomic(program.len()));
    }

    #[test]
    fn register_indices_stay_in_range() {
        let program = kitchen_sink();
        let decoded = DecodedProgram::new(program);
        for op in decoded.ops() {
            // to_instr re-validates every register index via Reg::new.
            let _ = op.to_instr();
        }
        assert!(NUM_REGS <= u8::MAX as usize);
    }

    #[test]
    fn decoded_is_compact() {
        assert!(
            std::mem::size_of::<Decoded>() <= 24,
            "Decoded grew past 24 bytes: {}",
            std::mem::size_of::<Decoded>()
        );
    }
}
