//! Deterministic, seeded thread scheduling.
//!
//! Everything in the pipeline depends on executions being *reproducible*:
//! the same program, policy, and seed always produce the same interleaving,
//! so recorded logs, detected races, and classification outcomes are stable
//! across runs. Distinct seeds produce distinct interleavings, which is how
//! the evaluation corpus varies race instances across its 20 executions.

use crate::exec::Observer;
use crate::machine::{Fault, Machine};
use crate::rng::SplitMix64;

/// How the next thread to execute is chosen.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum SchedulePolicy {
    /// Rotate through runnable threads, `quantum` instructions each.
    RoundRobin { quantum: u64 },
    /// Choose a uniformly random runnable thread before *every* instruction.
    /// Maximally racy; useful to shake out rare interleavings.
    Random { seed: u64 },
    /// Choose a random runnable thread and run it for a random quantum in
    /// `min_quantum ..= max_quantum` instructions.
    Chunked { seed: u64, min_quantum: u64, max_quantum: u64 },
}

/// Configuration for [`run`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct RunConfig {
    pub policy: SchedulePolicy,
    /// Upper bound on total executed instructions (guards against livelock
    /// in spin loops).
    pub max_steps: u64,
}

impl RunConfig {
    /// Default bound on executed instructions.
    pub const DEFAULT_MAX_STEPS: u64 = 10_000_000;

    /// Round-robin scheduling with the given quantum.
    #[must_use]
    pub fn round_robin(quantum: u64) -> Self {
        RunConfig {
            policy: SchedulePolicy::RoundRobin { quantum: quantum.max(1) },
            max_steps: Self::DEFAULT_MAX_STEPS,
        }
    }

    /// Per-instruction random scheduling.
    #[must_use]
    pub fn random(seed: u64) -> Self {
        RunConfig { policy: SchedulePolicy::Random { seed }, max_steps: Self::DEFAULT_MAX_STEPS }
    }

    /// Random thread choice with random quanta.
    #[must_use]
    pub fn chunked(seed: u64, min_quantum: u64, max_quantum: u64) -> Self {
        assert!(min_quantum >= 1 && max_quantum >= min_quantum, "invalid quantum range");
        RunConfig {
            policy: SchedulePolicy::Chunked { seed, min_quantum, max_quantum },
            max_steps: Self::DEFAULT_MAX_STEPS,
        }
    }

    /// Replaces the step bound.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }
}

/// Result of a [`run`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunSummary {
    /// Total instructions executed.
    pub steps: u64,
    /// Whether every thread terminated before `max_steps` was reached.
    pub completed: bool,
    /// Faults raised, as `(tid, fault)` pairs in occurrence order.
    pub faults: Vec<(usize, Fault)>,
}

struct Picker {
    policy: SchedulePolicy,
    rng: SplitMix64,
    current: Option<usize>,
    remaining: u64,
}

impl Picker {
    fn new(policy: SchedulePolicy) -> Self {
        let seed = match policy {
            SchedulePolicy::Random { seed } | SchedulePolicy::Chunked { seed, .. } => seed,
            SchedulePolicy::RoundRobin { .. } => 0,
        };
        Picker { policy, rng: SplitMix64::new(seed), current: None, remaining: 0 }
    }

    /// Picks the next thread from the non-empty `runnable` set.
    #[inline]
    fn pick(&mut self, runnable: &[usize]) -> usize {
        debug_assert!(!runnable.is_empty());
        // Keep running the current thread while its quantum lasts. The run
        // loops preempt (zeroing `remaining`) whenever the current thread
        // halts, faults, or yields — and only the stepping thread can leave
        // the runnable set — so a live quantum implies `cur` is still
        // runnable and no membership scan is needed on the per-instruction
        // fast path.
        if let Some(cur) = self.current {
            if self.remaining > 0 {
                debug_assert!(runnable.contains(&cur));
                self.remaining -= 1;
                return cur;
            }
        }
        self.pick_fresh(runnable)
    }

    /// The seed's picker, which re-verified the current thread's membership
    /// in `runnable` on every step. Decisions are identical to [`Picker::pick`];
    /// retained so [`run_reference`] preserves the seed scheduler's per-step
    /// cost profile as the "before" baseline in throughput comparisons.
    fn pick_seed(&mut self, runnable: &[usize]) -> usize {
        debug_assert!(!runnable.is_empty());
        if let Some(cur) = self.current {
            if self.remaining > 0 && runnable.contains(&cur) {
                self.remaining -= 1;
                return cur;
            }
        }
        self.pick_fresh(runnable)
    }

    /// Starts a fresh quantum: chooses the thread and quantum per policy.
    fn pick_fresh(&mut self, runnable: &[usize]) -> usize {
        let (tid, quantum) = match self.policy {
            SchedulePolicy::RoundRobin { quantum } => {
                let next = match self.current {
                    Some(cur) => runnable.iter().copied().find(|&t| t > cur).unwrap_or(runnable[0]),
                    None => runnable[0],
                };
                (next, quantum)
            }
            SchedulePolicy::Random { .. } => (runnable[self.rng.next_index(runnable.len())], 1),
            SchedulePolicy::Chunked { min_quantum, max_quantum, .. } => {
                let tid = runnable[self.rng.next_index(runnable.len())];
                (tid, self.rng.next_in(min_quantum, max_quantum))
            }
        };
        self.current = Some(tid);
        self.remaining = quantum.saturating_sub(1);
        tid
    }

    fn preempt(&mut self) {
        self.remaining = 0;
    }
}

/// Runs `machine` to completion (or until `max_steps`), reporting every
/// instruction to `observer`.
///
/// Execution is fully deterministic for a given `(program, config)` pair.
pub fn run(machine: &mut Machine, config: &RunConfig, observer: &mut dyn Observer) -> RunSummary {
    run_loop(machine, config, observer, Machine::step_into, Picker::pick)
}

/// [`run`], but stepping through the retained seed interpreter
/// ([`Machine::step_into_reference`]) instead of the predecoded fast path.
///
/// Exists for differential testing (the `predecode_equiv` suite pins the two
/// paths step-for-step identical) and as the "before" baseline in throughput
/// benchmarks.
pub fn run_reference(
    machine: &mut Machine,
    config: &RunConfig,
    observer: &mut dyn Observer,
) -> RunSummary {
    run_loop(machine, config, observer, Machine::step_into_reference, Picker::pick_seed)
}

/// [`run`] without an observer, stepping through [`Machine::step_native`]:
/// no [`StepInfo`](crate::exec::StepInfo) is materialized, so this is the
/// fastest way to execute a program and the native baseline the pipeline's
/// overhead ratios divide by. Scheduling decisions are identical to
/// [`run`]'s, so outputs, faults, and the step count all match.
pub fn run_native(machine: &mut Machine, config: &RunConfig) -> RunSummary {
    let mut picker = Picker::new(config.policy);
    let mut steps = 0;
    let mut faults = Vec::new();
    let mut runnable = machine.runnable();
    while !runnable.is_empty() && steps < config.max_steps {
        let tid = picker.pick(&runnable);
        let out = machine.step_native(tid);
        steps += 1;
        if let Some(fault) = out.fault {
            faults.push((tid, fault));
        }
        if out.yielded {
            picker.preempt();
        }
        if out.ended {
            runnable.retain(|&t| t != tid);
            picker.preempt();
        }
    }
    RunSummary { steps, completed: runnable.is_empty(), faults }
}

fn run_loop(
    machine: &mut Machine,
    config: &RunConfig,
    observer: &mut dyn Observer,
    step: fn(&mut Machine, usize, &mut crate::exec::StepInfo),
    pick: fn(&mut Picker, &[usize]) -> usize,
) -> RunSummary {
    observer.on_start(machine);
    let mut picker = Picker::new(config.policy);
    let mut steps = 0;
    let mut faults = Vec::new();
    // Maintain the runnable set incrementally: recomputing it on every
    // instruction dominates the cost of "native" execution otherwise.
    let mut runnable = machine.runnable();
    let mut info = crate::exec::StepInfo::placeholder();
    while !runnable.is_empty() && steps < config.max_steps {
        let tid = pick(&mut picker, &runnable);
        step(machine, tid, &mut info);
        steps += 1;
        if let Some(fault) = info.fault {
            faults.push((tid, fault));
        }
        if info.yielded {
            picker.preempt();
        }
        if info.halted || info.fault.is_some() {
            runnable.retain(|&t| t != tid);
            picker.preempt();
        }
        observer.on_step(machine, &info);
    }
    RunSummary { steps, completed: runnable.is_empty(), faults }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::isa::{Cond, Reg, SysCall};
    use std::sync::Arc;

    /// Two threads each print their tid three times.
    fn two_printers() -> Arc<crate::program::Program> {
        let mut b = ProgramBuilder::new();
        for name in ["a", "b"] {
            b.thread(name);
            for _ in 0..3 {
                b.syscall(SysCall::Tid).syscall(SysCall::Print);
            }
            b.halt();
        }
        Arc::new(b.build())
    }

    #[test]
    fn round_robin_interleaves_on_quantum() {
        let p = two_printers();
        let mut m = Machine::new(p);
        let summary = run(&mut m, &RunConfig::round_robin(2), &mut ());
        assert!(summary.completed);
        assert!(summary.faults.is_empty());
        // Quantum 2: each (tid, print) pair alternates between threads.
        let tids: Vec<usize> = m.output().iter().map(|o| o.tid).collect();
        assert_eq!(tids, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let p = two_printers();
        let mut m1 = Machine::new(p.clone());
        let mut m2 = Machine::new(p.clone());
        run(&mut m1, &RunConfig::random(7), &mut ());
        run(&mut m2, &RunConfig::random(7), &mut ());
        assert_eq!(m1.output(), m2.output());
        let mut m3 = Machine::new(p);
        run(&mut m3, &RunConfig::random(8), &mut ());
        // Different seed usually differs; both are legal schedules, so only
        // assert the run completed.
        assert!(m3.finished());
    }

    #[test]
    fn chunked_policy_is_deterministic_per_seed() {
        let p = two_printers();
        let mut m1 = Machine::new(p.clone());
        let mut m2 = Machine::new(p);
        run(&mut m1, &RunConfig::chunked(3, 1, 4), &mut ());
        run(&mut m2, &RunConfig::chunked(3, 1, 4), &mut ());
        assert_eq!(m1.output(), m2.output());
    }

    #[test]
    fn max_steps_stops_livelock() {
        let mut b = ProgramBuilder::new();
        b.thread("spin");
        let top = b.fresh_label("top");
        b.label(top).jump(top);
        let mut m = Machine::new(Arc::new(b.build()));
        let summary = run(&mut m, &RunConfig::round_robin(1).with_max_steps(100), &mut ());
        assert!(!summary.completed);
        assert_eq!(summary.steps, 100);
    }

    #[test]
    fn yield_forces_a_switch() {
        let mut b = ProgramBuilder::new();
        // Thread a yields after its first print; thread b prints once.
        b.thread("a");
        b.syscall(SysCall::Tid)
            .syscall(SysCall::Print)
            .syscall(SysCall::Yield)
            .syscall(SysCall::Tid)
            .syscall(SysCall::Print)
            .halt();
        b.thread("b");
        b.syscall(SysCall::Tid).syscall(SysCall::Print).halt();
        let mut m = Machine::new(Arc::new(b.build()));
        run(&mut m, &RunConfig::round_robin(1000), &mut ());
        let tids: Vec<usize> = m.output().iter().map(|o| o.tid).collect();
        assert_eq!(tids, vec![0, 1, 0], "yield hands the cpu to thread b");
    }

    #[test]
    fn native_path_matches_observed_run() {
        // Same schedule decisions, outputs, and summary whether or not a
        // StepInfo is materialized — including across yields and faults.
        let mut b = ProgramBuilder::new();
        b.thread("a");
        b.syscall(SysCall::Tid)
            .syscall(SysCall::Print)
            .syscall(SysCall::Yield)
            .syscall(SysCall::Tid)
            .syscall(SysCall::Print)
            .halt();
        b.thread("b");
        b.syscall(SysCall::Tid).syscall(SysCall::Print).ret(); // ret faults: empty stack
        let p: Arc<crate::program::Program> = Arc::new(b.build());
        for config in [RunConfig::round_robin(2), RunConfig::random(5), RunConfig::chunked(3, 1, 4)]
        {
            let mut observed = Machine::new(p.clone());
            let mut native = Machine::new(p.clone());
            let s1 = run(&mut observed, &config, &mut ());
            let s2 = run_native(&mut native, &config);
            assert_eq!(s1, s2, "{config:?}");
            assert_eq!(observed.output(), native.output(), "{config:?}");
            for tid in 0..2 {
                assert_eq!(observed.thread(tid).status(), native.thread(tid).status());
                assert_eq!(observed.thread(tid).end_seq(), native.thread(tid).end_seq());
            }
        }
    }

    #[test]
    fn spinlock_handoff_completes_under_round_robin() {
        // Thread a stores a flag; thread b spins until it sees it.
        let mut b = ProgramBuilder::new();
        b.thread("setter");
        b.movi(Reg::R1, 1).store(Reg::R1, Reg::R15, 0x10).halt();
        b.thread("waiter");
        let spin = b.fresh_label("spin");
        b.label(spin)
            .load(Reg::R2, Reg::R15, 0x10)
            .branch(Cond::Eq, Reg::R2, Reg::R15, spin)
            .halt();
        let mut m = Machine::new(Arc::new(b.build()));
        let summary = run(&mut m, &RunConfig::round_robin(4), &mut ());
        assert!(summary.completed);
    }
}
