//! Binary instruction encoding — the VM's "machine code".
//!
//! Instructions encode to one or two 64-bit words: a header word holding
//! the opcode and register fields, plus an operand word for instructions
//! carrying an immediate, memory offset, or branch target. The encoding
//! exists so programs can be stored compactly alongside replay logs (iDNA
//! records code as well as data) and round-trips exactly.
//!
//! Header word layout (low to high):
//!
//! ```text
//! bits  0..8   opcode
//! bits  8..12  register field A
//! bits 12..16  register field B
//! bits 16..20  register field C
//! bits 20..24  register field D
//! bits 24..32  sub-operation (BinOp / Cond / RmwOp / SysCall index)
//! ```

use std::fmt;

use crate::isa::{BinOp, Cond, Instr, Reg, RmwOp, SysCall};

/// Decoding failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// Index of the offending word.
    pub at: usize,
    pub message: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at word {}: {}", self.at, self.message)
    }
}

impl std::error::Error for DecodeError {}

// Opcodes.
const OP_MOVI: u64 = 0x01;
const OP_MOV: u64 = 0x02;
const OP_BIN: u64 = 0x03;
const OP_BINI: u64 = 0x04;
const OP_LOAD: u64 = 0x05;
const OP_STORE: u64 = 0x06;
const OP_RMW: u64 = 0x07;
const OP_CAS: u64 = 0x08;
const OP_FENCE: u64 = 0x09;
const OP_JUMP: u64 = 0x0A;
const OP_BRANCH: u64 = 0x0B;
const OP_CALL: u64 = 0x0C;
const OP_RET: u64 = 0x0D;
const OP_SYSCALL: u64 = 0x0E;
const OP_HALT: u64 = 0x0F;

fn header(op: u64, a: u8, b: u8, c: u8, d: u8, sub: u64) -> u64 {
    op | (u64::from(a) << 8)
        | (u64::from(b) << 12)
        | (u64::from(c) << 16)
        | (u64::from(d) << 20)
        | (sub << 24)
}

fn reg_field(word: u64, shift: u32, at: usize) -> Result<Reg, DecodeError> {
    let idx = ((word >> shift) & 0xf) as u8;
    Reg::try_new(idx).ok_or_else(|| DecodeError { at, message: format!("bad register {idx}") })
}

fn sub_field<T: Copy>(word: u64, all: &[T], at: usize, what: &str) -> Result<T, DecodeError> {
    let idx = ((word >> 24) & 0xff) as usize;
    all.get(idx)
        .copied()
        .ok_or_else(|| DecodeError { at, message: format!("bad {what} index {idx}") })
}

fn sub_index<T: PartialEq>(value: T, all: &[T]) -> u64 {
    all.iter().position(|x| *x == value).expect("sub-op is in its ALL table") as u64
}

/// Encodes one instruction, appending 1–2 words to `out`.
pub fn encode_into(instr: &Instr, out: &mut Vec<u64>) {
    let r = |reg: Reg| reg.index() as u8;
    match *instr {
        Instr::MovImm { dst, imm } => {
            out.push(header(OP_MOVI, r(dst), 0, 0, 0, 0));
            out.push(imm);
        }
        Instr::Mov { dst, src } => out.push(header(OP_MOV, r(dst), r(src), 0, 0, 0)),
        Instr::Bin { op, dst, lhs, rhs } => {
            out.push(header(OP_BIN, r(dst), r(lhs), r(rhs), 0, sub_index(op, &BinOp::ALL)));
        }
        Instr::BinImm { op, dst, lhs, imm } => {
            out.push(header(OP_BINI, r(dst), r(lhs), 0, 0, sub_index(op, &BinOp::ALL)));
            out.push(imm);
        }
        Instr::Load { dst, base, offset } => {
            out.push(header(OP_LOAD, r(dst), r(base), 0, 0, 0));
            out.push(offset as u64);
        }
        Instr::Store { src, base, offset } => {
            out.push(header(OP_STORE, r(src), r(base), 0, 0, 0));
            out.push(offset as u64);
        }
        Instr::AtomicRmw { op, dst, base, offset, src } => {
            out.push(header(OP_RMW, r(dst), r(base), r(src), 0, sub_index(op, &RmwOp::ALL)));
            out.push(offset as u64);
        }
        Instr::AtomicCas { dst, base, offset, expected, new } => {
            out.push(header(OP_CAS, r(dst), r(base), r(expected), r(new), 0));
            out.push(offset as u64);
        }
        Instr::Fence => out.push(header(OP_FENCE, 0, 0, 0, 0, 0)),
        Instr::Jump { target } => {
            out.push(header(OP_JUMP, 0, 0, 0, 0, 0));
            out.push(target as u64);
        }
        Instr::Branch { cond, lhs, rhs, target } => {
            out.push(header(OP_BRANCH, r(lhs), r(rhs), 0, 0, sub_index(cond, &Cond::ALL)));
            out.push(target as u64);
        }
        Instr::Call { target } => {
            out.push(header(OP_CALL, 0, 0, 0, 0, 0));
            out.push(target as u64);
        }
        Instr::Ret => out.push(header(OP_RET, 0, 0, 0, 0, 0)),
        Instr::Syscall { call } => {
            out.push(header(OP_SYSCALL, 0, 0, 0, 0, sub_index(call, &SysCall::ALL)));
        }
        Instr::Halt => out.push(header(OP_HALT, 0, 0, 0, 0, 0)),
    }
}

/// Decodes one instruction starting at `words[at]`, returning the
/// instruction and the number of words consumed.
///
/// # Errors
///
/// Returns a [`DecodeError`] on unknown opcodes, bad fields, or truncation.
pub fn decode_at(words: &[u64], at: usize) -> Result<(Instr, usize), DecodeError> {
    let word = *words.get(at).ok_or_else(|| DecodeError { at, message: "out of bounds".into() })?;
    let op = word & 0xff;
    let operand = |n: usize| -> Result<u64, DecodeError> {
        words
            .get(at + n)
            .copied()
            .ok_or_else(|| DecodeError { at, message: "missing operand word".into() })
    };
    let instr = match op {
        OP_MOVI => (Instr::MovImm { dst: reg_field(word, 8, at)?, imm: operand(1)? }, 2),
        OP_MOV => (Instr::Mov { dst: reg_field(word, 8, at)?, src: reg_field(word, 12, at)? }, 1),
        OP_BIN => (
            Instr::Bin {
                op: sub_field(word, &BinOp::ALL, at, "binop")?,
                dst: reg_field(word, 8, at)?,
                lhs: reg_field(word, 12, at)?,
                rhs: reg_field(word, 16, at)?,
            },
            1,
        ),
        OP_BINI => (
            Instr::BinImm {
                op: sub_field(word, &BinOp::ALL, at, "binop")?,
                dst: reg_field(word, 8, at)?,
                lhs: reg_field(word, 12, at)?,
                imm: operand(1)?,
            },
            2,
        ),
        OP_LOAD => (
            Instr::Load {
                dst: reg_field(word, 8, at)?,
                base: reg_field(word, 12, at)?,
                offset: operand(1)? as i64,
            },
            2,
        ),
        OP_STORE => (
            Instr::Store {
                src: reg_field(word, 8, at)?,
                base: reg_field(word, 12, at)?,
                offset: operand(1)? as i64,
            },
            2,
        ),
        OP_RMW => (
            Instr::AtomicRmw {
                op: sub_field(word, &RmwOp::ALL, at, "rmw op")?,
                dst: reg_field(word, 8, at)?,
                base: reg_field(word, 12, at)?,
                src: reg_field(word, 16, at)?,
                offset: operand(1)? as i64,
            },
            2,
        ),
        OP_CAS => (
            Instr::AtomicCas {
                dst: reg_field(word, 8, at)?,
                base: reg_field(word, 12, at)?,
                expected: reg_field(word, 16, at)?,
                new: reg_field(word, 20, at)?,
                offset: operand(1)? as i64,
            },
            2,
        ),
        OP_FENCE => (Instr::Fence, 1),
        OP_JUMP => (Instr::Jump { target: operand(1)? as usize }, 2),
        OP_BRANCH => (
            Instr::Branch {
                cond: sub_field(word, &Cond::ALL, at, "condition")?,
                lhs: reg_field(word, 8, at)?,
                rhs: reg_field(word, 12, at)?,
                target: operand(1)? as usize,
            },
            2,
        ),
        OP_CALL => (Instr::Call { target: operand(1)? as usize }, 2),
        OP_RET => (Instr::Ret, 1),
        OP_SYSCALL => (Instr::Syscall { call: sub_field(word, &SysCall::ALL, at, "syscall")? }, 1),
        OP_HALT => (Instr::Halt, 1),
        other => return Err(DecodeError { at, message: format!("unknown opcode {other:#x}") }),
    };
    Ok(instr)
}

/// Encodes an instruction stream.
#[must_use]
pub fn encode_program(instrs: &[Instr]) -> Vec<u64> {
    let mut out = Vec::with_capacity(instrs.len() * 2);
    for i in instrs {
        encode_into(i, &mut out);
    }
    out
}

/// Decodes an instruction stream previously produced by [`encode_program`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on malformed input.
pub fn decode_program(words: &[u64]) -> Result<Vec<Instr>, DecodeError> {
    let mut out = Vec::new();
    let mut at = 0;
    while at < words.len() {
        let (instr, used) = decode_at(words, at)?;
        out.push(instr);
        at += used;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Instr> {
        let mut v = vec![
            Instr::MovImm { dst: Reg::R3, imm: u64::MAX },
            Instr::Mov { dst: Reg::R0, src: Reg::R15 },
            Instr::Fence,
            Instr::Jump { target: 12345 },
            Instr::Call { target: 7 },
            Instr::Ret,
            Instr::Halt,
            Instr::Load { dst: Reg::R1, base: Reg::R2, offset: -9 },
            Instr::Store { src: Reg::R4, base: Reg::R5, offset: i64::MAX },
            Instr::AtomicCas {
                dst: Reg::R6,
                base: Reg::R7,
                offset: 0x1000,
                expected: Reg::R8,
                new: Reg::R9,
            },
        ];
        for op in BinOp::ALL {
            v.push(Instr::Bin { op, dst: Reg::R1, lhs: Reg::R2, rhs: Reg::R3 });
            v.push(Instr::BinImm { op, dst: Reg::R4, lhs: Reg::R5, imm: 42 });
        }
        for op in RmwOp::ALL {
            v.push(Instr::AtomicRmw { op, dst: Reg::R1, base: Reg::R2, offset: 8, src: Reg::R3 });
        }
        for cond in Cond::ALL {
            v.push(Instr::Branch { cond, lhs: Reg::R10, rhs: Reg::R11, target: 99 });
        }
        for call in SysCall::ALL {
            v.push(Instr::Syscall { call });
        }
        v
    }

    #[test]
    fn every_instruction_roundtrips() {
        for instr in samples() {
            let mut words = Vec::new();
            encode_into(&instr, &mut words);
            let (back, used) = decode_at(&words, 0).unwrap_or_else(|e| panic!("{instr:?}: {e}"));
            assert_eq!(back, instr);
            assert_eq!(used, words.len(), "{instr:?} consumed the right word count");
        }
    }

    #[test]
    fn program_stream_roundtrips() {
        let instrs = samples();
        let words = encode_program(&instrs);
        let back = decode_program(&words).unwrap();
        assert_eq!(back, instrs);
        // Density: between 1 and 2 words per instruction.
        assert!(words.len() >= instrs.len());
        assert!(words.len() <= instrs.len() * 2);
    }

    #[test]
    fn junk_is_rejected() {
        assert!(decode_program(&[0xFF]).is_err(), "unknown opcode");
        assert!(decode_program(&[super::OP_MOVI]).is_err(), "missing operand");
        // Bad sub-op index.
        let bad_sub = super::header(super::OP_BIN, 1, 2, 3, 0, 200);
        assert!(decode_program(&[bad_sub]).is_err());
        let err = decode_program(&[0xFF]).unwrap_err();
        assert!(err.to_string().contains("unknown opcode"));
    }

    #[test]
    fn decode_mid_stream_offsets_are_reported() {
        let mut words = encode_program(&[Instr::Fence, Instr::Ret]);
        words.push(0xEE); // junk after two valid instructions
        let err = decode_program(&words).unwrap_err();
        assert_eq!(err.at, 2);
    }
}
