//! Program container: instructions, entry points, marks, and global
//! variable layout.

use std::collections::HashMap;
use std::fmt;

use crate::isa::Instr;

/// Specification of one thread of a [`Program`]: where it starts executing
/// and the initial values of its first argument registers (`r0..`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadSpec {
    /// Human-readable thread name, used in reports.
    pub name: String,
    /// Absolute instruction index at which the thread starts.
    pub entry: usize,
    /// Values loaded into `r0`, `r1`, ... before the thread runs.
    pub args: Vec<u64>,
}

/// A complete multi-threaded program for the VM.
///
/// Programs are immutable once built. Use [`ProgramBuilder`] to construct one
/// in code, or [`asm::assemble`] to parse the text form.
///
/// [`ProgramBuilder`]: crate::builder::ProgramBuilder
/// [`asm::assemble`]: crate::asm::assemble
#[derive(Clone, Debug, Default)]
pub struct Program {
    instrs: Vec<Instr>,
    threads: Vec<ThreadSpec>,
    /// Named instruction positions ("marks"), used by workloads to attach
    /// ground-truth labels to specific static instructions.
    marks: HashMap<String, usize>,
    /// Initial values of global memory words (address -> value).
    globals: HashMap<u64, u64>,
}

impl Program {
    /// Creates a program from raw parts.
    ///
    /// Prefer [`ProgramBuilder`] in application code; this constructor is for
    /// tooling (the assembler, generators in tests).
    ///
    /// # Panics
    ///
    /// Panics if any thread entry is out of range.
    ///
    /// [`ProgramBuilder`]: crate::builder::ProgramBuilder
    #[must_use]
    pub fn from_parts(
        instrs: Vec<Instr>,
        threads: Vec<ThreadSpec>,
        marks: HashMap<String, usize>,
        globals: HashMap<u64, u64>,
    ) -> Self {
        for t in &threads {
            assert!(t.entry < instrs.len() || instrs.is_empty(), "thread entry out of range");
        }
        Program { instrs, threads, marks, globals }
    }

    /// The instruction at index `pc`, or `None` past the end.
    #[must_use]
    pub fn instr(&self, pc: usize) -> Option<&Instr> {
        self.instrs.get(pc)
    }

    /// All instructions.
    #[must_use]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The thread specifications.
    #[must_use]
    pub fn threads(&self) -> &[ThreadSpec] {
        &self.threads
    }

    /// Resolves a mark name to its instruction index.
    #[must_use]
    pub fn mark(&self, name: &str) -> Option<usize> {
        self.marks.get(name).copied()
    }

    /// All marks as a map from name to instruction index.
    #[must_use]
    pub fn marks(&self) -> &HashMap<String, usize> {
        &self.marks
    }

    /// The name of the mark placed at instruction `pc`, if any.
    #[must_use]
    pub fn mark_at(&self, pc: usize) -> Option<&str> {
        self.marks.iter().find_map(|(name, &p)| (p == pc).then_some(name.as_str()))
    }

    /// Initial global-memory image.
    #[must_use]
    pub fn globals(&self) -> &HashMap<u64, u64> {
        &self.globals
    }
}

impl fmt::Display for Program {
    /// Disassembles the whole program, one instruction per line, with marks
    /// shown as `name:` prefixes.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut by_pc: HashMap<usize, Vec<&str>> = HashMap::new();
        for (name, &pc) in &self.marks {
            by_pc.entry(pc).or_default().push(name);
        }
        for (pc, instr) in self.instrs.iter().enumerate() {
            if let Some(names) = by_pc.get(&pc) {
                for name in names {
                    writeln!(f, "{name}:")?;
                }
            }
            writeln!(f, "  {pc:4}  {instr}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instr, Reg};

    fn tiny() -> Program {
        let instrs = vec![Instr::MovImm { dst: Reg::R0, imm: 1 }, Instr::Halt];
        let threads = vec![ThreadSpec { name: "main".into(), entry: 0, args: vec![] }];
        let mut marks = HashMap::new();
        marks.insert("start".to_string(), 0);
        Program::from_parts(instrs, threads, marks, HashMap::new())
    }

    #[test]
    fn lookup_and_marks() {
        let p = tiny();
        assert_eq!(p.len(), 2);
        assert_eq!(p.mark("start"), Some(0));
        assert_eq!(p.mark("missing"), None);
        assert_eq!(p.mark_at(0), Some("start"));
        assert_eq!(p.mark_at(1), None);
        assert!(matches!(p.instr(1), Some(Instr::Halt)));
        assert!(p.instr(2).is_none());
    }

    #[test]
    #[should_panic(expected = "thread entry out of range")]
    fn bad_entry_panics() {
        let _ = Program::from_parts(
            vec![Instr::Halt],
            vec![ThreadSpec { name: "t".into(), entry: 5, args: vec![] }],
            HashMap::new(),
            HashMap::new(),
        );
    }

    #[test]
    fn display_includes_marks() {
        let p = tiny();
        let text = p.to_string();
        assert!(text.contains("start:"));
        assert!(text.contains("halt"));
    }
}
