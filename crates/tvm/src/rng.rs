//! A small deterministic PRNG for seeded scheduling and test-data
//! generation.
//!
//! The scheduler only needs a reproducible stream — the same seed must
//! yield the same interleaving on every platform and in every build — not
//! cryptographic quality. SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) is
//! a tiny, well-distributed generator that passes BigCrush, has a full
//! 2^64 period over its state, and costs a handful of arithmetic ops per
//! draw, so it is also what the property tests and workload generators use.

/// SplitMix64 generator.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..bound` (`bound` must be non-zero), using
    /// Lemire's widening-multiply rejection method so the result is
    /// unbiased and cheap.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires a non-zero bound");
        loop {
            let x = self.next_u64();
            let wide = u128::from(x) * u128::from(bound);
            #[allow(clippy::cast_possible_truncation)]
            let low = wide as u64;
            if low >= bound.wrapping_neg() % bound {
                return (wide >> 64) as u64;
            }
            // Rejected draw: retry with fresh bits (rare unless `bound`
            // is close to 2^64).
        }
    }

    /// Uniform draw from the inclusive range `lo..=hi`.
    pub fn next_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "next_in requires lo <= hi");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(span + 1)
    }

    /// Uniform index into a slice of the given length.
    pub fn next_index(&mut self, len: usize) -> usize {
        usize::try_from(self.next_below(len as u64)).expect("index fits usize")
    }

    /// A random bool with probability `num/denom` of being true.
    pub fn next_ratio(&mut self, num: u64, denom: u64) -> bool {
        self.next_below(denom) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_answer_vector() {
        // Reference values for seed 1234567 from the published SplitMix64
        // algorithm; pins the implementation against accidental drift,
        // which would silently change every seeded schedule.
        let mut rng = SplitMix64::new(1234567);
        let expect = [6457827717110365317u64, 3203168211198807973, 9817491932198370423];
        for e in expect {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn bounded_draws_stay_in_range_and_cover() {
        let mut rng = SplitMix64::new(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.next_below(5);
            assert!(v < 5);
            seen[v as usize] = true;
            let r = rng.next_in(3, 9);
            assert!((3..=9).contains(&r));
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear in 200 draws");
    }

    #[test]
    fn full_range_draw_works() {
        let mut rng = SplitMix64::new(9);
        // Must not overflow or loop forever.
        let _ = rng.next_in(0, u64::MAX);
        let _ = rng.next_below(u64::MAX);
    }
}
