//! §5.4(5) *Disjoint Bit Manipulation*: reader and writer use different
//! bits of the same word, so the race on the word is benign once the
//! irrelevant bits are masked off.
//!
//! * [`emit`] — one writer repeatedly rewrites the low byte of a packed
//!   word whose high byte is constant; each reader masks out the low byte.
//!   Every (write, read) race is **No-State-Change**. Plants one race per
//!   reader.
//! * [`emit_cold_bit`] — additionally, the writer's *final* store sets a
//!   "shutdown" bit that a reader's recorded check never saw set; the
//!   alternative order observes it and branches into cold code:
//!   **Replay-Failure**, really benign. Plants 2 races (one NoStateChange,
//!   one ReplayFailure).

use tvm::isa::{BinOp, Cond, Reg};

use super::{Ctx, Emitted};
use crate::truth::{BenignCategory, TrueVerdict};

/// High byte of the packed word (never modified).
const HIGH_BYTE: u64 = 0xAB00;
/// Bit 16: the cold-variant "shutdown" flag.
const SHUTDOWN_BIT: u64 = 0x1_0000;

fn emit_writer(
    ctx: &mut Ctx<'_>,
    word: u64,
    iters: u64,
    finish_with_bit: bool,
) -> (String, Option<String>) {
    ctx.thread("bit_writer");
    let top = ctx.label("wtop");
    ctx.b.movi(Reg::R1, 1).label(top);
    // r2 = (word & ~0xff) | r1  — update only the low byte.
    ctx.b.load(Reg::R2, Reg::R15, word as i64).bini(BinOp::And, Reg::R2, Reg::R2, !0xffu64).bin(
        BinOp::Or,
        Reg::R2,
        Reg::R2,
        Reg::R1,
    );
    let store = ctx.mark("write_low_byte");
    ctx.b
        .store(Reg::R2, Reg::R15, word as i64)
        .addi(Reg::R1, Reg::R1, 1)
        .bini(BinOp::Sub, Reg::R3, Reg::R1, iters + 1)
        .branch(Cond::Ne, Reg::R3, Reg::R15, top);
    let finish = if finish_with_bit {
        ctx.b.load(Reg::R2, Reg::R15, word as i64).bini(BinOp::Or, Reg::R2, Reg::R2, SHUTDOWN_BIT);
        let finish = ctx.mark("write_shutdown_bit");
        ctx.b.store(Reg::R2, Reg::R15, word as i64);
        Some(finish)
    } else {
        None
    };
    ctx.clobber_scratch();
    ctx.b.halt();
    (store, finish)
}

/// Emits the plain variant with `readers` reader threads; plants `readers`
/// No-State-Change races.
pub fn emit(ctx: &mut Ctx<'_>, readers: usize, iters: u64) -> Emitted {
    let word = ctx.alloc.word();
    ctx.b.global(word, HIGH_BYTE);
    let mut emitted = Emitted::default();
    let (store, _) = emit_writer(ctx, word, iters, false);
    for r in 0..readers {
        ctx.thread(&format!("bit_reader{r}"));
        let read = ctx.mark(&format!("read_high_byte{r}"));
        ctx.b.load(Reg::R1, Reg::R15, word as i64).bini(BinOp::And, Reg::R1, Reg::R1, 0xff00);
        // The masked value is always the constant high byte.
        ctx.b.print(Reg::R1);
        ctx.clobber_scratch();
        ctx.b.movi(Reg::R0, 0).halt();
        emitted.push(
            store.clone(),
            read,
            TrueVerdict::Benign(BenignCategory::DisjointBitManipulation),
        );
    }
    emitted
}

/// Emits the cold-bit variant; plants 2 races.
pub fn emit_cold_bit(ctx: &mut Ctx<'_>, iters: u64) -> Emitted {
    let word = ctx.alloc.word();
    ctx.b.global(word, HIGH_BYTE);
    let mut emitted = Emitted::default();
    let (store, finish) = emit_writer(ctx, word, iters, true);
    let finish = finish.expect("cold variant always finishes with the bit");

    ctx.thread("bit_checker");
    let cold = ctx.label("cold_shutdown");
    let join = ctx.label("join");
    let read = ctx.mark("check_bits");
    ctx.b
        .load(Reg::R1, Reg::R15, word as i64)
        .bini(BinOp::And, Reg::R2, Reg::R1, SHUTDOWN_BIT)
        .movi(Reg::R1, 0)
        .branch(Cond::Ne, Reg::R2, Reg::R15, cold)
        .jump(join);
    // Cold path: handle shutdown — never executed in the recording because
    // the checker runs before the writer's final store.
    ctx.b.label(cold);
    ctx.b.movi(Reg::R4, 0xDEAD).movi(Reg::R4, 0).jump(join);
    ctx.b.label(join);
    ctx.clobber_scratch();
    ctx.b.halt();

    let benign = TrueVerdict::Benign(BenignCategory::DisjointBitManipulation);
    emitted.push(store, read.clone(), benign);
    emitted.push(finish, read, benign);
    emitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::testutil::{assert_groups, run_pattern};
    use replay_race::classify::OutcomeGroup;
    use tvm::scheduler::RunConfig;

    #[test]
    fn masked_readers_are_no_state_change() {
        let run = run_pattern(|ctx| emit(ctx, 2, 4), RunConfig::round_robin(2));
        assert_groups(
            &run,
            &[
                ("write_low_byte", "read_high_byte0", OutcomeGroup::NoStateChange),
                ("write_low_byte", "read_high_byte1", OutcomeGroup::NoStateChange),
            ],
        );
    }

    #[test]
    fn stable_across_schedules() {
        for seed in 0..8 {
            let run = run_pattern(|ctx| emit(ctx, 1, 3), RunConfig::chunked(seed, 1, 4));
            assert!(run.unexpected.is_empty(), "seed {seed}: {:?}", run.unexpected);
            for (id, group) in &run.groups {
                if let Some(g) = group {
                    assert_eq!(*g, OutcomeGroup::NoStateChange, "seed {seed} race {id}");
                }
            }
        }
    }

    #[test]
    fn cold_bit_checker_is_replay_failure() {
        // Round-robin(1): the checker's single read happens well before the
        // writer's final store, so the recorded check sees the bit clear.
        let run = run_pattern(|ctx| emit_cold_bit(ctx, 6), RunConfig::round_robin(1));
        assert_groups(
            &run,
            &[
                ("write_low_byte", "check_bits", OutcomeGroup::NoStateChange),
                ("write_shutdown_bit", "check_bits", OutcomeGroup::ReplayFailure),
            ],
        );
    }
}
