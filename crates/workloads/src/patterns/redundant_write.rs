//! §5.4(4) *Redundant Writes*: a write stores the value the location
//! already holds, so racing against it is invisible.
//!
//! The paper's real-world example: every worker thread writes the process
//! id (the same value, returned by a system call) to a shared word other
//! threads read. We model the word as pre-initialized to the value, making
//! every write genuinely redundant: both orders of any conflicting pair
//! leave identical state. All races here are real-benign and the classifier
//! should mark every one No-State-Change.

use tvm::isa::Reg;

use super::{Ctx, Emitted};
use crate::truth::{BenignCategory, TrueVerdict};

/// Configuration: how many redundant writers and how many readers share the
/// word.
#[derive(Copy, Clone, Debug)]
pub struct RedundantWriteConfig {
    pub writers: usize,
    pub readers: usize,
    /// The "process id" every writer stores (and the word's initial value).
    pub value: u64,
}

impl Default for RedundantWriteConfig {
    fn default() -> Self {
        RedundantWriteConfig { writers: 2, readers: 1, value: 0x1D }
    }
}

/// Number of unique races this pattern plants:
/// `C(writers, 2)` write-write pairs plus `writers × readers` write-read
/// pairs.
#[must_use]
pub fn race_count(cfg: &RedundantWriteConfig) -> usize {
    cfg.writers * (cfg.writers - 1) / 2 + cfg.writers * cfg.readers
}

/// Emits the pattern; see the module docs.
pub fn emit(ctx: &mut Ctx<'_>, cfg: &RedundantWriteConfig) -> Emitted {
    let word = ctx.alloc.word();
    ctx.b.global(word, cfg.value);
    let mut emitted = Emitted::default();

    let mut write_marks = Vec::new();
    for w in 0..cfg.writers {
        ctx.thread(&format!("writer{w}"));
        ctx.b.movi(Reg::R1, cfg.value);
        let mark = ctx.mark(&format!("write{w}"));
        ctx.b.store(Reg::R1, Reg::R15, word as i64);
        ctx.clobber_scratch();
        ctx.b.halt();
        write_marks.push(mark);
    }

    let mut read_marks = Vec::new();
    for r in 0..cfg.readers {
        ctx.thread(&format!("reader{r}"));
        let mark = ctx.mark(&format!("read{r}"));
        ctx.b.load(Reg::R1, Reg::R15, word as i64);
        // The read value is stable (always `value`), so it may even escape
        // through the output stream.
        ctx.b.print(Reg::R1);
        ctx.clobber_scratch();
        ctx.b.movi(Reg::R0, 0).halt();
        read_marks.push(mark);
    }

    for (i, wa) in write_marks.iter().enumerate() {
        for wb in &write_marks[i + 1..] {
            emitted.push(
                wa.clone(),
                wb.clone(),
                TrueVerdict::Benign(BenignCategory::RedundantWrite),
            );
        }
        for rd in &read_marks {
            emitted.push(
                wa.clone(),
                rd.clone(),
                TrueVerdict::Benign(BenignCategory::RedundantWrite),
            );
        }
    }
    debug_assert_eq!(emitted.races.len(), race_count(cfg));
    emitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::testutil::{assert_groups, run_pattern};
    use replay_race::classify::OutcomeGroup;
    use tvm::scheduler::RunConfig;

    #[test]
    fn all_races_are_no_state_change() {
        let run = run_pattern(
            |ctx| emit(ctx, &RedundantWriteConfig::default()),
            RunConfig::round_robin(1),
        );
        assert_groups(
            &run,
            &[
                ("write0", "write1", OutcomeGroup::NoStateChange),
                ("write0", "read0", OutcomeGroup::NoStateChange),
                ("write1", "read0", OutcomeGroup::NoStateChange),
            ],
        );
    }

    #[test]
    fn counts_scale_with_config() {
        let cfg = RedundantWriteConfig { writers: 3, readers: 2, value: 7 };
        assert_eq!(race_count(&cfg), 3 + 6);
        let run = run_pattern(|ctx| emit(ctx, &cfg), RunConfig::round_robin(1));
        assert!(run.unexpected.is_empty(), "{:?}", run.unexpected);
        // Every planted race is detected under the fine-grained schedule.
        assert!(run.groups.values().all(|g| g == &Some(OutcomeGroup::NoStateChange)));
        assert_eq!(run.groups.len(), 9);
    }

    #[test]
    fn stable_under_many_schedules() {
        for seed in 0..8 {
            let run = run_pattern(
                |ctx| emit(ctx, &RedundantWriteConfig::default()),
                RunConfig::chunked(seed, 1, 4),
            );
            assert!(run.unexpected.is_empty());
            for (id, group) in &run.groups {
                if let Some(g) = group {
                    assert_eq!(*g, OutcomeGroup::NoStateChange, "seed {seed} race {id}");
                }
            }
        }
    }
}
