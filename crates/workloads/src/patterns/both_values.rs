//! §5.4(3) *Both Values Valid*: the racing read may correctly observe
//! either the old or the new value.
//!
//! Three emitters, modeled on the paper's own examples:
//!
//! * [`emit_watermark`] — the producer/consumer buffer: the consumer reads
//!   the producer's write-count without synchronization; a stale count just
//!   makes it wait longer. Re-checking loops make both replay orders
//!   converge: **No-State-Change**. Plants 2 races (count and entry).
//! * [`emit_version_switch`] with `cold = false` — a shared variable picks
//!   between two implementations of the same computation; the reader saw
//!   both versions during recording, and both produce the same value:
//!   **No-State-Change**. 1 race.
//! * [`emit_version_switch`] with `cold = true` — the recorded execution
//!   only ever called one version; the alternative order dispatches into
//!   the unrecorded one: **Replay-Failure**, a really-benign
//!   misclassification (paper §5.2.4). 1 race.

use tvm::isa::{BinOp, Cond, Reg};

use super::{Ctx, Emitted};
use crate::truth::{BenignCategory, TrueVerdict};

/// Emits the producer/consumer watermark (2 races, both No-State-Change).
pub fn emit_watermark(ctx: &mut Ctx<'_>, entries: u64) -> Emitted {
    assert!(entries >= 1);
    let count = ctx.alloc.word();
    let buf = ctx.alloc.block(entries);
    let mut emitted = Emitted::default();

    // Producer: for i in 1..=entries { buf[i-1] = i; count = i; }
    ctx.thread("producer");
    let ptop = ctx.label("ptop");
    ctx.b
        .movi(Reg::R1, 1) // i
        .movi(Reg::R2, buf) // &buf[i-1]
        .label(ptop);
    let produce = ctx.mark("produce_entry");
    ctx.b.store(Reg::R1, Reg::R2, 0);
    let bump = ctx.mark("bump_count");
    ctx.b
        .store(Reg::R1, Reg::R15, count as i64)
        .addi(Reg::R1, Reg::R1, 1)
        .addi(Reg::R2, Reg::R2, 1)
        .bini(BinOp::Sub, Reg::R3, Reg::R1, entries + 1)
        .branch(Cond::Ne, Reg::R3, Reg::R15, ptop);
    ctx.clobber_scratch();
    ctx.b.halt();

    // Consumer: for j in 0..entries { wait until count > j; wait until
    // buf[j] != 0; sum += buf[j]; } print sum.
    ctx.thread("consumer");
    let jtop = ctx.label("jtop");
    let cspin = ctx.label("count_spin");
    let espin = ctx.label("entry_spin");
    ctx.b
        .movi(Reg::R4, 0) // j
        .movi(Reg::R5, buf) // &buf[j]
        .movi(Reg::R6, 0) // sum
        .label(jtop)
        .label(cspin);
    let read_count = ctx.mark("read_count");
    ctx.b
        .load(Reg::R1, Reg::R15, count as i64)
        .branch(Cond::Le, Reg::R1, Reg::R4, cspin)
        .movi(Reg::R1, 0) // the raced count value must not escape
        .label(espin);
    let read_entry = ctx.mark("read_entry");
    ctx.b
        .load(Reg::R2, Reg::R5, 0)
        .branch(Cond::Eq, Reg::R2, Reg::R15, espin)
        .add(Reg::R6, Reg::R6, Reg::R2)
        .addi(Reg::R4, Reg::R4, 1)
        .addi(Reg::R5, Reg::R5, 1)
        .bini(BinOp::Sub, Reg::R3, Reg::R4, entries)
        .branch(Cond::Ne, Reg::R3, Reg::R15, jtop);
    // sum is deterministic: 1 + 2 + ... + entries.
    ctx.b.print(Reg::R6);
    ctx.clobber_scratch();
    ctx.b.movi(Reg::R0, 0).halt();

    let benign = TrueVerdict::Benign(BenignCategory::BothValuesValid);
    emitted.push(bump, read_count, benign);
    emitted.push(produce, read_entry, benign);
    emitted
}

/// Emits the function-version switch (1 race).
///
/// With `cold = false` the reader polls the version variable in a loop that
/// observes both versions during recording (No-State-Change). With
/// `cold = true` the reader checks once, late — the recorded run only ever
/// dispatched to version 1, so the alternative order's dispatch to version
/// 0 is a Replay-Failure.
pub fn emit_version_switch(ctx: &mut Ctx<'_>, cold: bool) -> Emitted {
    let ver = ctx.alloc.word();
    let input = 21u64;
    let mut emitted = Emitted::default();

    // Both versions compute r2 = 2 * r1, differently.
    let f0 = ctx.label("f_v0");
    let f1 = ctx.label("f_v1");
    let dispatch_join = ctx.label("dispatch_join");

    ctx.thread("switcher");
    if !cold {
        // Give the reader time to observe version 0 first.
        ctx.busywork(16);
    }
    ctx.b.movi(Reg::R1, 1);
    let set_ver = ctx.mark("set_version");
    ctx.b.store(Reg::R1, Reg::R15, ver as i64);
    ctx.clobber_scratch();
    ctx.b.halt();

    ctx.thread("caller");
    let iterations: u64 = if cold { 1 } else { 6 };
    if cold {
        // Run late: the recorded read observes version 1 only.
        ctx.busywork(24);
    }
    let loop_top = ctx.label("loop_top");
    ctx.b.movi(Reg::R7, iterations).label(loop_top).movi(Reg::R1, input);
    let read_ver = ctx.mark("read_version");
    ctx.b.load(Reg::R3, Reg::R15, ver as i64).branch(Cond::Eq, Reg::R3, Reg::R15, f0).jump(f1);
    ctx.b.label(f0);
    ctx.b.bin(BinOp::Add, Reg::R2, Reg::R1, Reg::R1).jump(dispatch_join);
    ctx.b.label(f1);
    ctx.b.bini(BinOp::Shl, Reg::R2, Reg::R1, 1).jump(dispatch_join);
    ctx.b.label(dispatch_join);
    // r2 == 42 either way; the raced version value must not escape.
    ctx.b.movi(Reg::R3, 0).subi(Reg::R7, Reg::R7, 1).branch(Cond::Ne, Reg::R7, Reg::R15, loop_top);
    ctx.b.print(Reg::R2);
    ctx.clobber_scratch();
    ctx.b.movi(Reg::R0, 0).halt();

    emitted.push(set_ver, read_ver, TrueVerdict::Benign(BenignCategory::BothValuesValid));
    emitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::testutil::{assert_groups, run_pattern};
    use replay_race::classify::OutcomeGroup;
    use tvm::scheduler::RunConfig;

    #[test]
    fn watermark_converges() {
        let run = run_pattern(|ctx| emit_watermark(ctx, 4), RunConfig::round_robin(3));
        assert_groups(
            &run,
            &[
                ("bump_count", "read_count", OutcomeGroup::NoStateChange),
                ("produce_entry", "read_entry", OutcomeGroup::NoStateChange),
            ],
        );
    }

    #[test]
    fn watermark_sum_is_deterministic_across_schedules() {
        for seed in 0..8 {
            let run = run_pattern(|ctx| emit_watermark(ctx, 3), RunConfig::chunked(seed, 1, 5));
            assert!(run.unexpected.is_empty(), "seed {seed}: {:?}", run.unexpected);
            for (id, group) in &run.groups {
                if let Some(g) = group {
                    assert_eq!(*g, OutcomeGroup::NoStateChange, "seed {seed} race {id}");
                }
            }
        }
    }

    #[test]
    fn warm_version_switch_is_no_state_change() {
        let run = run_pattern(|ctx| emit_version_switch(ctx, false), RunConfig::round_robin(2));
        assert_groups(&run, &[("set_version", "read_version", OutcomeGroup::NoStateChange)]);
    }

    #[test]
    fn cold_version_switch_is_replay_failure() {
        let run = run_pattern(|ctx| emit_version_switch(ctx, true), RunConfig::round_robin(2));
        assert_groups(&run, &[("set_version", "read_version", OutcomeGroup::ReplayFailure)]);
    }
}
