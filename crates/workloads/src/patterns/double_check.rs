//! §5.4(2) *Double Checks*: the unsynchronized fast-path check of
//! double-checked (lazy) initialization. The racy outer read is benign: if
//! it observes the "not yet initialized" value, the thread simply performs
//! the (idempotent) initialization itself.
//!
//! Two variants:
//!
//! * [`emit_shared`] — both threads run the *same* checking function
//!   (warmed on a private slot first, so the initialization path is in both
//!   footprints). The alternative order routes the checker into the init
//!   body, which stores the exact same values: **No-State-Change**.
//! * [`emit_cold`] — a dedicated initializer plus a checker whose own init
//!   path was never recorded: the alternative order lands in cold code, a
//!   **Replay-Failure** misclassification of a really benign race (paper
//!   §5.2.4).

use tvm::isa::{Cond, Reg};

use super::{Ctx, Emitted};
use crate::truth::{BenignCategory, TrueVerdict};

const INIT_VALUE: u64 = 0x1234;

/// Emits the warm, shared-function variant. Plants 2 races: the
/// always-present check/init-flag race, plus the flag write-write race
/// (detected when both threads take the init path in the recorded
/// schedule — use a fine-grained schedule to interleave them).
pub fn emit_shared(ctx: &mut Ctx<'_>) -> Emitted {
    let slot_a = ctx.alloc.word(); // thread a's private warm-up flag
    let slot_b = ctx.alloc.word(); // thread b's private warm-up flag
    let shared = ctx.alloc.word(); // the racy flag
    let out_a = ctx.alloc.word(); // per-thread init output (not shared)
    let out_b = ctx.alloc.word();
    let mut emitted = Emitted::default();

    // The checking function: r10 = flag address, r11 = private output
    // address. The expensive initialization result goes to the caller's
    // private word, so the only shared state is the flag itself.
    //
    //   if (*flag == 0) { *out = INIT_VALUE; *flag = 1; }
    let func = ctx.label("dc_fn");
    let join = ctx.label("dc_join");
    for (name, private, out) in [("a", slot_a, out_a), ("b", slot_b, out_b)] {
        ctx.thread(&format!("checker_{name}"));
        // Warm-up call on the private flag executes the init path, putting
        // it into this thread's footprint.
        ctx.b.movi(Reg::R10, private).movi(Reg::R11, out).call(func);
        // The racy call.
        ctx.b.movi(Reg::R10, shared).movi(Reg::R11, out).call(func);
        ctx.b.movi(Reg::R10, 0).movi(Reg::R11, 0);
        ctx.clobber_scratch();
        ctx.b.halt();
    }

    ctx.b.label(func);
    let outer_check = ctx.mark("outer_check");
    ctx.b.load(Reg::R1, Reg::R10, 0).branch(Cond::Ne, Reg::R1, Reg::R15, join);
    ctx.b.movi(Reg::R2, INIT_VALUE).store(Reg::R2, Reg::R11, 0);
    ctx.b.movi(Reg::R3, 1);
    let init_flag = ctx.mark("init_flag");
    ctx.b.store(Reg::R3, Reg::R10, 0);
    ctx.b.label(join);
    ctx.b.movi(Reg::R1, 0).movi(Reg::R2, 0).movi(Reg::R3, 0).ret();

    let benign = TrueVerdict::Benign(BenignCategory::DoubleCheck);
    emitted.push(outer_check, init_flag.clone(), benign);
    // Detected when both threads entered the init path in the recording:
    emitted.push(init_flag.clone(), init_flag, benign);
    emitted
}

/// Emits the cold variant: one race, misclassified Replay-Failure.
pub fn emit_cold(ctx: &mut Ctx<'_>) -> Emitted {
    let slot = ctx.alloc.block(2); // [flag, value]
    let mut emitted = Emitted::default();

    ctx.thread("initializer");
    ctx.b.movi(Reg::R2, INIT_VALUE).store(Reg::R2, Reg::R15, slot as i64 + 1);
    ctx.b.movi(Reg::R3, 1);
    let init_flag = ctx.mark("init_flag");
    ctx.b.store(Reg::R3, Reg::R15, slot as i64);
    ctx.clobber_scratch();
    ctx.b.halt();

    ctx.thread("checker");
    // Run late so the recorded check observes flag == 1 and the fallback
    // init body below stays cold.
    ctx.busywork(24);
    let outer_check = ctx.mark("outer_check");
    let cold_init = ctx.label("cold_init");
    let join = ctx.label("join");
    ctx.b
        .load(Reg::R1, Reg::R15, slot as i64)
        .branch(Cond::Eq, Reg::R1, Reg::R15, cold_init)
        .jump(join);
    ctx.b.label(cold_init);
    // Idempotent re-initialization; harmless — but never recorded.
    ctx.b
        .movi(Reg::R2, INIT_VALUE)
        .store(Reg::R2, Reg::R15, slot as i64 + 1)
        .movi(Reg::R3, 1)
        .store(Reg::R3, Reg::R15, slot as i64)
        .jump(join);
    ctx.b.label(join);
    ctx.clobber_scratch();
    ctx.b.halt();

    emitted.push(init_flag, outer_check, TrueVerdict::Benign(BenignCategory::DoubleCheck));
    emitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::testutil::run_pattern;
    use replay_race::classify::OutcomeGroup;
    use tvm::scheduler::RunConfig;

    #[test]
    fn shared_variant_is_no_state_change() {
        for seed in 0..10u64 {
            let run = run_pattern(emit_shared, RunConfig::chunked(seed, 1, 4));
            assert!(run.unexpected.is_empty(), "seed {seed}: {:?}", run.unexpected);
            let mut detected = 0;
            for (id, group) in &run.groups {
                if let Some(g) = group {
                    detected += 1;
                    assert_eq!(
                        *g,
                        OutcomeGroup::NoStateChange,
                        "seed {seed} race {id}: double check must converge"
                    );
                }
            }
            assert!(detected >= 1, "seed {seed}: the check/init race must be detected");
        }
    }

    #[test]
    fn cold_variant_is_replay_failure() {
        let run = run_pattern(emit_cold, RunConfig::round_robin(2));
        assert!(run.unexpected.is_empty(), "{:?}", run.unexpected);
        let groups: Vec<_> = run.groups.values().flatten().collect();
        assert_eq!(groups, vec![&OutcomeGroup::ReplayFailure]);
    }
}
