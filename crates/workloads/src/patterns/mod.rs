//! Race-pattern library: one module per entry in the paper's taxonomy.
//!
//! Every pattern is an *emitter*: it appends threads and code to a shared
//! [`ProgramBuilder`] under a namespace, and returns the manifest of races
//! it plants. Patterns compose — a corpus execution instantiates many
//! patterns into one program, like the many services of the paper's
//! Vista/IE runs.
//!
//! # Conventions
//!
//! * `r15` is never written: it is the zero register, and `[r15 + K]`
//!   addresses global `K`.
//! * `r14` is reserved for the per-instance enable gate.
//! * Patterns that must be *correctly classified benign* (No-State-Change)
//!   keep their regions convergent: spin loops re-read until the expected
//!   value arrives, both sides of data-dependent branches rejoin and
//!   clobber condition registers, and no value derived from a racy read
//!   escapes with order-dependent content.
//! * Patterns planted as replayer-limitation misclassifications route the
//!   alternative order into *cold code* that the recorded execution never
//!   touched.

pub mod approx_stats;
pub mod both_values;
pub mod disjoint_bits;
pub mod double_check;
pub mod extras;
pub mod harmful;
pub mod redundant_write;
pub mod user_sync;
pub mod value_impact;

use tvm::builder::{Label, ProgramBuilder};
use tvm::isa::{Cond, Reg};
use tvm::memory::GLOBAL_LIMIT;

use crate::truth::GroundTruthRace;

/// Allocator for global words, so composed patterns never collide.
#[derive(Debug)]
pub struct GlobalAlloc {
    next: u64,
}

impl GlobalAlloc {
    /// Starts allocating at a small offset (0 is left unused on purpose:
    /// stray null-ish addresses should not silently alias a pattern's
    /// state).
    #[must_use]
    pub fn new() -> Self {
        GlobalAlloc { next: 0x100 }
    }

    /// Allocates one global word.
    ///
    /// # Panics
    ///
    /// Panics if the globals region is exhausted.
    pub fn word(&mut self) -> u64 {
        let addr = self.next;
        self.next += 1;
        assert!(self.next < GLOBAL_LIMIT, "globals region exhausted");
        addr
    }

    /// Allocates `n` consecutive global words, returning the base.
    pub fn block(&mut self, n: u64) -> u64 {
        let base = self.next;
        self.next += n;
        assert!(self.next < GLOBAL_LIMIT, "globals region exhausted");
        base
    }
}

impl Default for GlobalAlloc {
    fn default() -> Self {
        Self::new()
    }
}

/// Emission context handed to every pattern.
#[derive(Debug)]
pub struct Ctx<'a> {
    pub b: &'a mut ProgramBuilder,
    pub alloc: &'a mut GlobalAlloc,
    /// Namespace for marks and thread names, e.g. `"e03.user_sync1"`.
    pub ns: String,
    /// Global word gating this instance: threads halt immediately when it
    /// is zero. `None` means always enabled.
    pub enable: Option<u64>,
}

impl<'a> Ctx<'a> {
    /// Creates a context.
    pub fn new(
        b: &'a mut ProgramBuilder,
        alloc: &'a mut GlobalAlloc,
        ns: impl Into<String>,
        enable: Option<u64>,
    ) -> Self {
        Ctx { b, alloc, ns: ns.into(), enable }
    }

    /// Namespaced mark on the next instruction; returns the full mark name.
    pub fn mark(&mut self, suffix: &str) -> String {
        let name = format!("{}.{}", self.ns, suffix);
        self.b.mark(&name);
        name
    }

    /// Namespaced fresh label.
    pub fn label(&mut self, suffix: &str) -> Label {
        let name = format!("{}.{}", self.ns, suffix);
        self.b.fresh_label(&name)
    }

    /// Declares a namespaced thread and emits the enable gate: when the
    /// instance's enable word is 0 the thread halts before touching any
    /// shared state.
    pub fn thread(&mut self, suffix: &str) {
        let name = format!("{}.{}", self.ns, suffix);
        self.b.thread(&name);
        if let Some(enable) = self.enable {
            let go = self.label(&format!("{suffix}_go"));
            self.b
                .load(Reg::R14, Reg::R15, enable as i64)
                .branch(Cond::Ne, Reg::R14, Reg::R15, go)
                .halt()
                .label(go);
        }
    }

    /// Emits `n` instructions of register-local busywork (delays a thread
    /// without touching memory), leaving `r13` clobbered.
    pub fn busywork(&mut self, n: usize) {
        for i in 0..n {
            self.b.movi(Reg::R13, i as u64);
        }
    }

    /// Clears the scratch registers a pattern used, so live-out comparison
    /// sees converged register files (`r1..=r8` plus `r13`).
    pub fn clobber_scratch(&mut self) {
        for r in 1..=8u8 {
            self.b.movi(Reg::new(r), 0);
        }
        self.b.movi(Reg::R13, 0);
    }
}

/// What a pattern emitted: its manifest plus bookkeeping for tests.
#[derive(Clone, Debug, Default)]
pub struct Emitted {
    /// The planted races.
    pub races: Vec<GroundTruthRace>,
}

impl Emitted {
    pub(crate) fn push(
        &mut self,
        mark_a: impl Into<String>,
        mark_b: impl Into<String>,
        verdict: crate::truth::TrueVerdict,
    ) {
        self.races.push(GroundTruthRace::new(mark_a, mark_b, verdict));
    }

    /// Merges another pattern's manifest into this one.
    pub fn extend(&mut self, other: Emitted) {
        self.races.extend(other.races);
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared harness for pattern unit tests: build one pattern instance,
    //! run the full pipeline, and join against the manifest.

    use std::collections::BTreeMap;
    use std::sync::Arc;

    use replay_race::classify::{ClassificationResult, OutcomeGroup};
    use replay_race::detect::StaticRaceId;
    use replay_race::pipeline::{run_pipeline, PipelineConfig};
    use tvm::scheduler::RunConfig;
    use tvm::{Program, ProgramBuilder};

    use super::{Ctx, Emitted, GlobalAlloc};
    use crate::truth::TruthTable;

    pub(crate) struct PatternRun {
        pub program: Arc<Program>,
        #[allow(dead_code)] // kept for ad-hoc debugging in pattern tests
        pub truth: TruthTable,
        pub result: ClassificationResult,
        /// Group per planted race (None when never detected in this run).
        pub groups: BTreeMap<StaticRaceId, Option<OutcomeGroup>>,
        /// Detected races that are not in the manifest.
        pub unexpected: Vec<StaticRaceId>,
    }

    /// Emits one pattern with `emit`, runs it under `run`, classifies, and
    /// joins with the manifest.
    pub(crate) fn run_pattern(
        emit: impl FnOnce(&mut Ctx<'_>) -> Emitted,
        run: RunConfig,
    ) -> PatternRun {
        let mut b = ProgramBuilder::new();
        let mut alloc = GlobalAlloc::new();
        let mut ctx = Ctx::new(&mut b, &mut alloc, "test", None);
        let emitted = emit(&mut ctx);
        let program: Arc<Program> = Arc::new(b.build());
        let truth = TruthTable::resolve(&program, &emitted.races);
        let result =
            run_pipeline(&program, &PipelineConfig::new(run)).expect("pipeline").classification;
        let mut groups = BTreeMap::new();
        for (id, _) in truth.iter() {
            groups.insert(id, result.races.get(&id).map(|r| r.group));
        }
        let unexpected =
            result.races.keys().filter(|id| truth.verdict(**id).is_none()).copied().collect();
        PatternRun { program, truth, result, groups, unexpected }
    }

    /// Asserts that every planted race was detected with the expected group
    /// and nothing unexpected was found.
    pub(crate) fn assert_groups(run: &PatternRun, expected: &[(&str, &str, OutcomeGroup)]) {
        assert!(
            run.unexpected.is_empty(),
            "unexpected races detected: {:?}\n(program)\n{}",
            run.unexpected,
            run.program
        );
        assert_eq!(
            run.groups.len(),
            expected.len(),
            "planted {} races, expectation lists {}",
            run.groups.len(),
            expected.len()
        );
        for (mark_a, mark_b, group) in expected {
            let pc_a = run.program.mark(&format!("test.{mark_a}")).expect("mark a");
            let pc_b = run.program.mark(&format!("test.{mark_b}")).expect("mark b");
            let id = StaticRaceId::new(pc_a, pc_b);
            let got = run.groups.get(&id).unwrap_or_else(|| panic!("race {id} not planted"));
            assert_eq!(
                got.as_ref(),
                Some(group),
                "race {id} ({mark_a} vs {mark_b}): expected {group:?}, got {got:?}"
            );
        }
    }
}
