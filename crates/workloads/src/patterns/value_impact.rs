//! Value-impact exemplars (DESIGN.md D13): races distinguished not by a
//! benign idiom but by whether the racy value can reach observable state.
//! They mirror `examples/asm/impact_dead.tasm` and `impact_sink.tasm`.
//!
//! * [`emit_dead_value`] — the reader consumes the racy value and then
//!   overwrites every register that ever saw it before anything escapes.
//!   No benign idiom matches (the read is live), but the value-impact
//!   pass proves the race can never reach observable state, so the
//!   `skip-unreachable` trust tier can record it No-State-Change without
//!   a single replay.
//! * [`emit_sink_value`] — the racy value flows straight into
//!   `sys.print`: impact *proven* with a pc-chain witness, and the
//!   dual-order replay really does observe divergent output
//!   (State-Change, flagged potentially harmful).

use tvm::isa::Reg;

use super::{Ctx, Emitted};
use crate::truth::{BenignCategory, HarmfulKind, TrueVerdict};

/// Emits the dead-value race; see the module docs. Plants one race,
/// real-benign (both values valid: whatever the read observes is
/// discarded before anything depends on it).
pub fn emit_dead_value(ctx: &mut Ctx<'_>) -> Emitted {
    let word = ctx.alloc.word();
    ctx.b.global(word, 0);
    let mut emitted = Emitted::default();

    ctx.thread("writer");
    ctx.b.movi(Reg::R1, 5);
    let store = ctx.mark("dead_store");
    ctx.b.store(Reg::R1, Reg::R15, word as i64);
    ctx.clobber_scratch();
    ctx.b.halt();

    ctx.thread("scratch");
    let load = ctx.mark("dead_load");
    ctx.b.load(Reg::R1, Reg::R15, word as i64);
    // Consume the value so the read is live — the disjoint-bits read-mask
    // shortcut must not fire — then kill every register that saw it.
    ctx.b.add(Reg::R2, Reg::R1, Reg::R1);
    ctx.clobber_scratch();
    ctx.b.halt();

    emitted.push(store, load, TrueVerdict::Benign(BenignCategory::BothValuesValid));
    emitted
}

/// Emits a block of dead-value races: the writer refreshes a bank of
/// scratch words (think debug counters) while the reader sums them into a
/// register it then discards. Every word is one race, every race is
/// real-benign and impact-unreachable — the bulk feed for the
/// `skip-unreachable` replay-savings measurement.
pub fn emit_dead_block(ctx: &mut Ctx<'_>) -> Emitted {
    const WORDS: u64 = 3;
    const PASSES: u64 = 4;
    let base = ctx.alloc.block(WORDS);
    for i in 0..WORDS {
        ctx.b.global(base + i, 0);
    }
    let mut emitted = Emitted::default();

    // Both threads loop over the bank so every static race accumulates
    // several dynamic instances (the loop keeps the pcs fixed; unrolling
    // would mint a fresh static race per pass). The loop counter in `r9`
    // never touches the racy values, so the branch stays untainted.
    ctx.thread("writer");
    ctx.b.movi(Reg::R9, PASSES);
    let w_loop = ctx.label("w_loop");
    ctx.b.label(w_loop);
    let mut stores = Vec::new();
    for i in 0..WORDS {
        ctx.b.addi(Reg::R1, Reg::R9, 10 + i);
        stores.push(ctx.mark(&format!("dead_store{i}")));
        ctx.b.store(Reg::R1, Reg::R15, (base + i) as i64);
    }
    ctx.b.subi(Reg::R9, Reg::R9, 1);
    ctx.b.branch(tvm::isa::Cond::Ne, Reg::R9, Reg::R15, w_loop);
    ctx.clobber_scratch();
    ctx.b.halt();

    ctx.thread("scanner");
    ctx.b.movi(Reg::R9, PASSES);
    let s_loop = ctx.label("s_loop");
    ctx.b.label(s_loop);
    let mut loads = Vec::new();
    for i in 0..WORDS {
        loads.push(ctx.mark(&format!("dead_load{i}")));
        ctx.b.load(Reg::R1, Reg::R15, (base + i) as i64);
        // Keep each read live (defeats the read-mask shortcut), then let
        // the running sum die with the scratch registers.
        ctx.b.add(Reg::R2, Reg::R2, Reg::R1);
    }
    ctx.b.subi(Reg::R9, Reg::R9, 1);
    ctx.b.branch(tvm::isa::Cond::Ne, Reg::R9, Reg::R15, s_loop);
    ctx.clobber_scratch();
    ctx.b.halt();

    for (store, load) in stores.into_iter().zip(loads) {
        emitted.push(store, load, TrueVerdict::Benign(BenignCategory::BothValuesValid));
    }
    emitted
}

/// Emits the sink-reaching race; see the module docs. Plants one race,
/// harmful: the logger can publish whichever value the interleaving
/// happened to leave in the word.
pub fn emit_sink_value(ctx: &mut Ctx<'_>) -> Emitted {
    let word = ctx.alloc.word();
    ctx.b.global(word, 0);
    let mut emitted = Emitted::default();

    ctx.thread("writer");
    ctx.b.movi(Reg::R1, 5);
    let store = ctx.mark("sink_store");
    ctx.b.store(Reg::R1, Reg::R15, word as i64);
    ctx.clobber_scratch();
    ctx.b.halt();

    ctx.thread("logger");
    let load = ctx.mark("sink_load");
    ctx.b.load(Reg::R0, Reg::R15, word as i64);
    ctx.b.print(Reg::R0);
    ctx.clobber_scratch();
    ctx.b.movi(Reg::R0, 0).halt();

    emitted.push(store, load, TrueVerdict::Harmful(HarmfulKind::RacyPublication));
    emitted
}

#[cfg(test)]
mod tests {
    use replay_race::classify::OutcomeGroup;
    use tvm::scheduler::RunConfig;

    use super::super::testutil::run_pattern;
    use super::*;

    #[test]
    fn dead_value_is_no_state_change_and_impact_unreachable() {
        let run = run_pattern(emit_dead_value, RunConfig::round_robin(1));
        assert!(run.unexpected.is_empty(), "{:?}", run.unexpected);
        for (id, group) in &run.groups {
            assert_eq!(*group, Some(OutcomeGroup::NoStateChange), "{id}");
        }
        let analysis = racecheck::analyze(&run.program);
        assert_eq!(analysis.warnings.len(), 1);
        let w = &analysis.warnings[0];
        assert_eq!(w.impact.reach, racecheck::Reach::Unreachable, "{w:?}");
        assert!(!w.predicted.high_confidence_benign(), "no idiom should vouch for it");
    }

    #[test]
    fn dead_block_races_are_no_state_change_and_impact_unreachable() {
        let run = run_pattern(emit_dead_block, RunConfig::round_robin(1));
        assert!(run.unexpected.is_empty(), "{:?}", run.unexpected);
        assert_eq!(run.groups.len(), 3, "one race per scratch word");
        for (id, group) in &run.groups {
            assert_eq!(*group, Some(OutcomeGroup::NoStateChange), "{id}");
        }
        let analysis = racecheck::analyze(&run.program);
        assert_eq!(analysis.warnings.len(), 3);
        for w in &analysis.warnings {
            assert_eq!(w.impact.reach, racecheck::Reach::Unreachable, "{w:?}");
        }
    }

    #[test]
    fn sink_value_is_state_change_and_impact_proven() {
        let run = run_pattern(emit_sink_value, RunConfig::round_robin(1));
        assert!(run.unexpected.is_empty(), "{:?}", run.unexpected);
        for (id, group) in &run.groups {
            assert_eq!(*group, Some(OutcomeGroup::StateChange), "{id}");
        }
        let analysis = racecheck::analyze(&run.program);
        assert_eq!(analysis.warnings.len(), 1);
        let w = &analysis.warnings[0];
        assert_eq!(w.impact.reach, racecheck::Reach::Proven, "{w:?}");
        assert!(!w.impact.sink_chain.is_empty(), "a proven sink carries its witness");
    }
}
