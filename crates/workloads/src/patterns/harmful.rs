//! The really harmful races of the corpus — the bugs a developer must fix.
//!
//! * [`emit_refcount`] — the paper's Figure 2: two threads run an
//!   unsynchronized `refCnt--; if (refCnt == 0) free(foo);`. Depending on
//!   the interleaving the object is freed twice (a fault) or never freed.
//!   Plants 2 races (the decrement's load/store conflict pairs).
//! * [`emit_publication`] — a producer publishes a value a consumer reads
//!   without synchronization. In the `cold_error` variant the consumer's
//!   "value missing" error path was never recorded (Replay-Failure);
//!   otherwise the consumer prints the stale value (State-Change). 1 race
//!   each.
//! * [`emit_dangling`] — a consumer loads a shared pointer while the
//!   producer swings it from a stale address to a fresh allocation:
//!   dereferencing the stale pointer is a crash, and the "object not yet
//!   initialized" handling was never recorded. Plants 2 races (the pointer
//!   swing and the pointee initialization), both Replay-Failure.

use tvm::isa::{Cond, Reg, RmwOp, SysCall};
use tvm::memory::HEAP_BASE;

use super::{Ctx, Emitted};
use crate::truth::{HarmfulKind, TrueVerdict};

/// Emits the Figure 2 reference-counting bug (2 races, both harmful).
///
/// Each worker holds `iters` references and drops them all in a loop;
/// the count starts at `2 * iters`. Most decrement instances commute (the
/// count is far from zero), so — as the paper's Figure 4 shows — only a
/// fraction of the instances exposes the bug, and the race must be observed
/// many times to be caught.
pub fn emit_refcount(ctx: &mut Ctx<'_>, iters: u64) -> Emitted {
    assert!(iters >= 1);
    let ready = ctx.alloc.word();
    let rc = ctx.alloc.word();
    let object_ptr = ctx.alloc.word();
    let mut emitted = Emitted::default();

    // Setup: allocate the object, set refCnt = 2 * iters, release the
    // workers via a proper atomic handshake (so only the refcount races are
    // unordered).
    ctx.thread("setup");
    ctx.b
        .movi(Reg::R0, 4)
        .syscall(SysCall::Alloc)
        .store(Reg::R0, Reg::R15, object_ptr as i64)
        .movi(Reg::R1, 2 * iters)
        .store(Reg::R1, Reg::R15, rc as i64)
        .movi(Reg::R2, 1)
        .atomic_rmw(RmwOp::Xchg, Reg::R3, Reg::R15, ready as i64, Reg::R2);
    ctx.clobber_scratch();
    ctx.b.movi(Reg::R0, 0).halt();

    // The shared decrement-and-maybe-free function.
    let drop_fn = ctx.label("drop_ref");
    for name in ["w1", "w2"] {
        ctx.thread(&format!("dropper_{name}"));
        let spin = ctx.label(&format!("{name}_spin"));
        let top = ctx.label(&format!("{name}_drop_loop"));
        ctx.b
            .label(spin)
            .movi(Reg::R2, 0)
            .atomic_rmw(RmwOp::Or, Reg::R1, Reg::R15, ready as i64, Reg::R2)
            .branch(Cond::Eq, Reg::R1, Reg::R15, spin)
            .movi(Reg::R7, iters)
            .label(top)
            .call(drop_fn)
            .subi(Reg::R7, Reg::R7, 1)
            .branch(Cond::Ne, Reg::R7, Reg::R15, top);
        ctx.clobber_scratch();
        ctx.b.movi(Reg::R0, 0).halt();
    }

    let skip_free = ctx.label("skip_free");
    ctx.b.label(drop_fn);
    let load_rc = ctx.mark("load_refcnt");
    ctx.b.load(Reg::R3, Reg::R15, rc as i64).subi(Reg::R3, Reg::R3, 1);
    let store_rc = ctx.mark("store_refcnt");
    ctx.b.store(Reg::R3, Reg::R15, rc as i64);
    // "If the count I wrote is zero, free" — the classic (but, without an
    // atomic decrement, broken) fetch_sub idiom.
    ctx.b
        .branch(Cond::Ne, Reg::R3, Reg::R15, skip_free)
        .load(Reg::R0, Reg::R15, object_ptr as i64)
        .syscall(SysCall::Free)
        .label(skip_free)
        .movi(Reg::R3, 0)
        .ret();

    let harmful = TrueVerdict::Harmful(HarmfulKind::RefCountFree);
    emitted.push(load_rc, store_rc.clone(), harmful);
    emitted.push(store_rc.clone(), store_rc.clone(), harmful);
    emitted
}

/// Emits the racy publication (1 race, harmful).
///
/// With `cold_error = false` the consumer prints whatever it reads — a
/// stale read shows up as different output (**State-Change**). With
/// `cold_error = true` a stale read branches into an error path the
/// recording never executed (**Replay-Failure**).
pub fn emit_publication(ctx: &mut Ctx<'_>, cold_error: bool) -> Emitted {
    let data = ctx.alloc.word();
    let mut emitted = Emitted::default();

    ctx.thread("publisher");
    ctx.b.movi(Reg::R1, 42);
    let publish = ctx.mark("publish");
    ctx.b.store(Reg::R1, Reg::R15, data as i64);
    ctx.clobber_scratch();
    ctx.b.halt();

    ctx.thread("subscriber");
    if cold_error {
        // Late read: the recording sees the published value; the
        // "missing value" error path below stays cold.
        ctx.busywork(24);
    }
    let consume = ctx.mark("consume");
    ctx.b.load(Reg::R1, Reg::R15, data as i64);
    if cold_error {
        let cold = ctx.label("missing_value");
        let join = ctx.label("join");
        ctx.b.branch(Cond::Eq, Reg::R1, Reg::R15, cold).jump(join);
        ctx.b.label(cold);
        // Error handling that was never recorded.
        ctx.b.movi(Reg::R5, 0xEE).print(Reg::R5).jump(join);
        ctx.b.label(join);
    } else {
        // Acts on whatever it read — possibly the stale 0.
        ctx.b.print(Reg::R1);
    }
    ctx.clobber_scratch();
    ctx.b.movi(Reg::R0, 0).halt();

    emitted.push(publish, consume, TrueVerdict::Harmful(HarmfulKind::RacyPublication));
    emitted
}

/// Emits the status beacon (1 race, harmful, Replay-Failure group).
///
/// A writer re-publishes a "running" status word every iteration and
/// finally transitions it to "shutting down"; a monitor polls the word and
/// must react to the transition — but the shutdown handling is on a path
/// the recording never took. Most race instances pair the monitor's reads
/// with *heartbeat* stores that rewrite the value already present, so both
/// orders converge; only the instances involving the transition store
/// expose the race. This reproduces the paper's Figure 4 observation that
/// only a small fraction of a harmful race's instances exposes it.
pub fn emit_status_beacon(ctx: &mut Ctx<'_>, beats: u64) -> Emitted {
    assert!(beats >= 2);
    let status = ctx.alloc.word();
    ctx.b.global(status, 1); // already "running" at startup
    let mut emitted = Emitted::default();

    ctx.thread("beacon");
    let top = ctx.label("beat_loop");
    // r2 = 1 while k < beats - 1, then 2 (the shutdown transition); the
    // store below is the same static instruction for both.
    let transition = ctx.label("transition");
    let store_point = ctx.label("store_point");
    ctx.b.movi(Reg::R1, 0).label(top).movi(Reg::R2, 1);
    ctx.b
        .bini(tvm::isa::BinOp::Sub, Reg::R3, Reg::R1, beats - 1)
        .branch(Cond::Eq, Reg::R3, Reg::R15, transition)
        .jump(store_point);
    ctx.b.label(transition);
    ctx.b.movi(Reg::R2, 2);
    ctx.b.label(store_point);
    let beat = ctx.mark("beat_store");
    ctx.b
        .store(Reg::R2, Reg::R15, status as i64)
        .addi(Reg::R1, Reg::R1, 1)
        .bini(tvm::isa::BinOp::Sub, Reg::R3, Reg::R1, beats)
        .branch(Cond::Ne, Reg::R3, Reg::R15, top);
    ctx.clobber_scratch();
    ctx.b.halt();

    ctx.thread("monitor");
    let poll = ctx.label("poll_loop");
    let shutdown = ctx.label("cold_shutdown");
    let next = ctx.label("next_poll");
    // Poll a fixed number of times; the recorded run ends before the
    // transition is observed, keeping the shutdown handler cold.
    ctx.b.movi(Reg::R4, beats / 2).label(poll);
    let read = ctx.mark("poll_status");
    ctx.b
        .load(Reg::R1, Reg::R15, status as i64)
        .bini(tvm::isa::BinOp::Sub, Reg::R3, Reg::R1, 2)
        .branch(Cond::Eq, Reg::R3, Reg::R15, shutdown)
        .jump(next);
    ctx.b.label(shutdown);
    // Shutdown handling the recording never executed.
    ctx.b.movi(Reg::R5, 0xD1E).movi(Reg::R5, 0).jump(next);
    ctx.b.label(next);
    ctx.b.movi(Reg::R1, 0).movi(Reg::R3, 0).subi(Reg::R4, Reg::R4, 1).branch(
        Cond::Ne,
        Reg::R4,
        Reg::R15,
        poll,
    );
    ctx.clobber_scratch();
    ctx.b.halt();

    emitted.push(beat, read, TrueVerdict::Harmful(HarmfulKind::RacyPublication));
    emitted
}

/// Emits the dangling-pointer consumer (2 races, both harmful).
pub fn emit_dangling(ctx: &mut Ctx<'_>) -> Emitted {
    let ptr = ctx.alloc.word();
    // The pointer starts out stale: a heap address the recording never
    // allocates. Dereferencing it is exactly the paper's replay-failure
    // flavour of a harmful race.
    ctx.b.global(ptr, HEAP_BASE + 0x5000);
    let mut emitted = Emitted::default();

    ctx.thread("swinger");
    ctx.b.movi(Reg::R0, 2).syscall(SysCall::Alloc).mov(Reg::R5, Reg::R0).movi(Reg::R1, 7);
    let fill = ctx.mark("fill_object");
    ctx.b.store(Reg::R1, Reg::R5, 0);
    let swing = ctx.mark("swing_pointer");
    ctx.b.store(Reg::R5, Reg::R15, ptr as i64);
    ctx.clobber_scratch();
    ctx.b.movi(Reg::R0, 0).halt();

    ctx.thread("chaser");
    // Run late so the recorded read observes the fresh pointer.
    ctx.busywork(24);
    let read_ptr = ctx.mark("read_pointer");
    ctx.b.load(Reg::R6, Reg::R15, ptr as i64);
    let deref = ctx.mark("deref_pointer");
    ctx.b.load(Reg::R1, Reg::R6, 0);
    // An uninitialized object is handled on a path the recording never
    // took (the recorded read saw the filled object).
    let cold = ctx.label("uninitialized_object");
    let join = ctx.label("join");
    ctx.b.branch(Cond::Eq, Reg::R1, Reg::R15, cold).jump(join);
    ctx.b.label(cold);
    ctx.b.movi(Reg::R5, 0xBAD).movi(Reg::R5, 0).jump(join);
    ctx.b.label(join);
    ctx.b.movi(Reg::R6, 0);
    ctx.clobber_scratch();
    ctx.b.movi(Reg::R0, 0).halt();

    emitted.push(swing, read_ptr, TrueVerdict::Harmful(HarmfulKind::DanglingPointer));
    emitted.push(fill, deref, TrueVerdict::Harmful(HarmfulKind::DanglingPointer));
    emitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::testutil::{assert_groups, run_pattern};
    use replay_race::classify::{OutcomeGroup, Verdict};
    use tvm::scheduler::RunConfig;

    /// A single lucky instance of the refcount bug can legitimately look
    /// benign (both orders commute away from the zero boundary) — the paper
    /// stresses that races must be observed across many instances (§4.3,
    /// Figure 4). Accumulated over several recorded executions, every
    /// planted refcount race must end up potentially harmful.
    #[test]
    fn refcount_races_are_harmful_when_merged_across_executions() {
        let mut results = Vec::new();
        let mut detected_any = false;
        for seed in 0..24u64 {
            let run = run_pattern(|ctx| emit_refcount(ctx, 3), RunConfig::chunked(seed, 1, 6));
            assert!(run.unexpected.is_empty(), "seed {seed}: {:?}", run.unexpected);
            detected_any |= !run.result.races.is_empty();
            results.push(run.result);
        }
        assert!(detected_any, "no schedule detected the refcount races");
        let merged = replay_race::classify::merge_classifications(&results);
        assert!(!merged.races.is_empty());
        for race in merged.races.values() {
            assert_eq!(
                race.verdict,
                Verdict::PotentiallyHarmful,
                "merged refcount race {} must be potentially harmful ({:?})",
                race.id,
                race.counts
            );
        }
    }

    #[test]
    fn publication_is_state_change() {
        let run = run_pattern(|ctx| emit_publication(ctx, false), RunConfig::round_robin(1));
        assert_groups(&run, &[("publish", "consume", OutcomeGroup::StateChange)]);
    }

    #[test]
    fn cold_publication_is_replay_failure() {
        let run = run_pattern(|ctx| emit_publication(ctx, true), RunConfig::round_robin(2));
        assert_groups(&run, &[("publish", "consume", OutcomeGroup::ReplayFailure)]);
    }

    #[test]
    fn status_beacon_exposes_rarely_but_is_caught() {
        let run = run_pattern(|ctx| emit_status_beacon(ctx, 10), RunConfig::round_robin(2));
        assert_groups(&run, &[("beat_store", "poll_status", OutcomeGroup::ReplayFailure)]);
        let race = run.result.races.values().next().unwrap();
        assert!(
            race.counts.analyzed >= 10,
            "the beacon race must have many instances, got {:?}",
            race.counts
        );
        let ratio = race.counts.exposing() as f64 / race.counts.analyzed as f64;
        assert!(ratio < 0.5, "most instances must look benign (paper Figure 4): {:?}", race.counts);
    }

    #[test]
    fn dangling_pointer_is_harmful() {
        let run = run_pattern(emit_dangling, RunConfig::round_robin(2));
        assert_groups(
            &run,
            &[
                ("swing_pointer", "read_pointer", OutcomeGroup::ReplayFailure),
                ("fill_object", "deref_pointer", OutcomeGroup::ReplayFailure),
            ],
        );
    }
}
