//! Extra patterns beyond the 20-execution corpus: classic concurrency
//! idioms that exercise interesting corners of the classifier. They are
//! library patterns (not part of the Table 1 corpus) used by tests and
//! available for experimentation.
//!
//! * [`emit_seqlock`] — a sequence lock: the reader retries until it gets a
//!   consistent snapshot, so every race on the sequence word and the data
//!   words is benign and converges (**No-State-Change**).
//! * [`emit_ticket_lock`] — a ticket lock whose `now_serving` hand-off is a
//!   plain store/load (user-constructed synchronization). Unlike a sticky
//!   flag (which converges under any imposed order because the waiter just
//!   spins until the value arrives), the ticket spin waits for an *exact*
//!   value: the classifier's infeasible alternative orders can strand the
//!   waiter behind a ticket that never comes back, producing replay
//!   failures — so both the hand-off and the guarded-data races end up
//!   flagged potentially harmful although they are really benign. The
//!   paper's tool shares this limitation (it can only replay orders, not
//!   prove them feasible); its user-sync NSC examples are the sticky kind.
//! * [`emit_lost_update`] — a plain read-modify-write on an account
//!   balance: the textbook harmful race (**State-Change**).

use tvm::isa::{BinOp, Cond, Reg, RmwOp};

use super::{Ctx, Emitted};
use crate::truth::{BenignCategory, HarmfulKind, TrueVerdict};

/// Emits a seqlock with one writer and one reader (3 races, all benign and
/// No-State-Change).
///
/// Layout: `[seq, data1, data2]`. The writer publishes `rounds` versions
/// with `data2 == 2 * data1`; the reader retries until `seq` is even and
/// stable around the snapshot, checks the invariant, and records only the
/// check result.
pub fn emit_seqlock(ctx: &mut Ctx<'_>, rounds: u64) -> Emitted {
    assert!(rounds >= 1);
    let seq = ctx.alloc.word();
    let data1 = ctx.alloc.word();
    let data2 = ctx.alloc.word();
    let ok_flag = ctx.alloc.word();
    let mut emitted = Emitted::default();

    ctx.thread("seq_writer");
    let top = ctx.label("w_top");
    ctx.b.movi(Reg::R1, 1).label(top);
    // seq++ (to odd), write pair, seq++ (to even).
    ctx.b.load(Reg::R2, Reg::R15, seq as i64).addi(Reg::R2, Reg::R2, 1);
    let seq_store = ctx.mark("seq_store_odd");
    ctx.b.store(Reg::R2, Reg::R15, seq as i64);
    let d1_store = ctx.mark("data1_store");
    ctx.b.store(Reg::R1, Reg::R15, data1 as i64);
    ctx.b.bini(BinOp::Mul, Reg::R3, Reg::R1, 2);
    ctx.b.store(Reg::R3, Reg::R15, data2 as i64);
    ctx.b.addi(Reg::R2, Reg::R2, 1).store(Reg::R2, Reg::R15, seq as i64);
    ctx.b.addi(Reg::R1, Reg::R1, 1).bini(BinOp::Sub, Reg::R4, Reg::R1, rounds + 1).branch(
        Cond::Ne,
        Reg::R4,
        Reg::R15,
        top,
    );
    ctx.clobber_scratch();
    ctx.b.halt();

    ctx.thread("seq_reader");
    let retry = ctx.label("retry");
    ctx.b.label(retry);
    let seq_read = ctx.mark("seq_read");
    ctx.b
        .load(Reg::R1, Reg::R15, seq as i64)
        // odd => a write is in progress => retry
        .bini(BinOp::And, Reg::R2, Reg::R1, 1)
        .branch(Cond::Ne, Reg::R2, Reg::R15, retry);
    let d1_read = ctx.mark("data1_read");
    ctx.b.load(Reg::R3, Reg::R15, data1 as i64).load(Reg::R4, Reg::R15, data2 as i64);
    // seq must be unchanged around the snapshot.
    ctx.b
        .load(Reg::R5, Reg::R15, seq as i64)
        .branch(Cond::Ne, Reg::R5, Reg::R1, retry)
        // also retry until at least one round was published
        .branch(Cond::Eq, Reg::R1, Reg::R15, retry);
    // Check the invariant d2 == 2*d1; record only the boolean (always 1).
    ctx.b
        .bini(BinOp::Mul, Reg::R6, Reg::R3, 2)
        .bin(BinOp::Sub, Reg::R6, Reg::R4, Reg::R6) // 0 when consistent
        .movi(Reg::R7, 1);
    let consistent = ctx.label("consistent");
    ctx.b.branch(Cond::Eq, Reg::R6, Reg::R15, consistent).movi(Reg::R7, 0).label(consistent);
    ctx.b.store(Reg::R7, Reg::R15, ok_flag as i64);
    ctx.clobber_scratch();
    ctx.b.halt();

    let benign = TrueVerdict::Benign(BenignCategory::UserConstructedSync);
    emitted.push(seq_store.clone(), seq_read.clone(), benign);
    emitted.push(d1_store, d1_read, benign);
    // The even seq store races with the same read pc; same static identity
    // as (seq_store_odd, seq_read)? No: different pc — cover it too.
    emitted
}

/// Emits a ticket lock guarding a counter (several races; see module docs).
///
/// Returns the manifest covering the `now_serving` hand-off (benign) and
/// the guarded-counter races (really benign, expected to be flagged — the
/// documented limitation).
pub fn emit_ticket_lock(ctx: &mut Ctx<'_>, workers: usize) -> Emitted {
    assert!(workers >= 2);
    let next_ticket = ctx.alloc.word();
    let now_serving = ctx.alloc.word();
    let counter = ctx.alloc.word();
    let mut emitted = Emitted::default();

    // Shared critical-section function so racing pcs are stable.
    let cs = ctx.label("critical_section");
    for w in 0..workers {
        ctx.thread(&format!("ticket_worker{w}"));
        ctx.b.call(cs);
        ctx.clobber_scratch();
        ctx.b.halt();
    }

    ctx.b.label(cs);
    // my_ticket = fetch_add(next_ticket, 1)   [atomic: a sequencer]
    ctx.b.movi(Reg::R1, 1).atomic_rmw(RmwOp::Add, Reg::R2, Reg::R15, next_ticket as i64, Reg::R1);
    // while (now_serving != my_ticket) spin   [plain load: user sync]
    let spin = ctx.label("ticket_spin");
    ctx.b.label(spin);
    let serving_read = ctx.mark("now_serving_read");
    ctx.b.load(Reg::R3, Reg::R15, now_serving as i64).branch(Cond::Ne, Reg::R3, Reg::R2, spin);
    // counter++  [the guarded data]
    let counter_load = ctx.mark("counter_load");
    ctx.b.load(Reg::R4, Reg::R15, counter as i64).addi(Reg::R4, Reg::R4, 1);
    let counter_store = ctx.mark("counter_store");
    ctx.b.store(Reg::R4, Reg::R15, counter as i64);
    // now_serving++  [plain store: the user-sync release]
    ctx.b.addi(Reg::R3, Reg::R3, 1);
    let serving_store = ctx.mark("now_serving_store");
    ctx.b.store(Reg::R3, Reg::R15, now_serving as i64);
    ctx.b.movi(Reg::R1, 0).movi(Reg::R2, 0).movi(Reg::R3, 0).movi(Reg::R4, 0).ret();

    let benign = TrueVerdict::Benign(BenignCategory::UserConstructedSync);
    emitted.push(serving_store.clone(), serving_read, benign);
    emitted.push(serving_store.clone(), serving_store.clone(), benign);
    // Guarded data: really benign (the ticket lock orders them), but the
    // classifier explores infeasible orders — expect potentially harmful.
    emitted.push(counter_load.clone(), counter_store.clone(), benign);
    emitted.push(counter_store.clone(), counter_store, benign);
    emitted
}

/// Emits the textbook lost update: two tellers adjust a balance with plain
/// read-modify-writes (2 races, both harmful).
pub fn emit_lost_update(ctx: &mut Ctx<'_>, deposits: u64) -> Emitted {
    let balance = ctx.alloc.word();
    ctx.b.global(balance, 100);
    let mut emitted = Emitted::default();

    let deposit_fn = ctx.label("deposit");
    for name in ["teller_a", "teller_b"] {
        ctx.thread(name);
        let top = ctx.label(&format!("{name}_top"));
        ctx.b.movi(Reg::R7, deposits).label(top).call(deposit_fn).subi(Reg::R7, Reg::R7, 1).branch(
            Cond::Ne,
            Reg::R7,
            Reg::R15,
            top,
        );
        ctx.clobber_scratch();
        ctx.b.halt();
    }
    ctx.b.label(deposit_fn);
    let bal_load = ctx.mark("balance_load");
    ctx.b.load(Reg::R1, Reg::R15, balance as i64).addi(Reg::R1, Reg::R1, 10);
    let bal_store = ctx.mark("balance_store");
    ctx.b.store(Reg::R1, Reg::R15, balance as i64).movi(Reg::R1, 0).ret();

    let harmful = TrueVerdict::Harmful(HarmfulKind::RacyPublication);
    emitted.push(bal_load, bal_store.clone(), harmful);
    emitted.push(bal_store.clone(), bal_store, harmful);
    emitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::testutil::run_pattern;
    use replay_race::classify::{OutcomeGroup, Verdict};
    use tvm::scheduler::RunConfig;

    #[test]
    fn seqlock_races_are_no_state_change() {
        for seed in 0..8u64 {
            let run = run_pattern(|ctx| emit_seqlock(ctx, 3), RunConfig::chunked(seed, 1, 5));
            // The manifest names the common races; others on the same words
            // (e.g. the even-seq store) may surface — all must be NSC.
            for (id, race) in &run.result.races {
                assert_eq!(
                    race.group,
                    OutcomeGroup::NoStateChange,
                    "seed {seed} race {id}: seqlock must converge"
                );
            }
            assert!(!run.result.races.is_empty(), "seed {seed}: seqlock races must be detected");
        }
    }

    #[test]
    fn ticket_lock_exact_value_spins_are_flagged_despite_being_benign() {
        // See the module docs: exact-value spins strand the waiter under
        // infeasible imposed orders, so most ticket-lock races are flagged.
        // The important properties to pin: detection covers the planted
        // races, nothing unexpected appears, and any instance that *does*
        // converge is counted No-State-Change (no spurious state changes on
        // the hand-off word itself, whose stores are an exact +1 sequence).
        let run = run_pattern(|ctx| emit_ticket_lock(ctx, 2), RunConfig::round_robin(2));
        assert!(run.unexpected.is_empty(), "{:?}", run.unexpected);
        let serving_read = run.program.mark("test.now_serving_read").unwrap();
        let serving_store = run.program.mark("test.now_serving_store").unwrap();
        let handoff = replay_race::detect::StaticRaceId::new(serving_store, serving_read);
        let handoff_race = run.result.races.get(&handoff).expect("handoff race detected");
        // Instances either converge (NSC) or strand the spinner (RF); an
        // imposed order must never silently corrupt the hand-off word.
        assert_eq!(handoff_race.counts.state_change, 0, "{:?}", handoff_race.counts);
        assert!(handoff_race.counts.no_state_change >= 1, "{:?}", handoff_race.counts);
        let guarded = replay_race::detect::StaticRaceId::new(
            run.program.mark("test.counter_store").unwrap(),
            run.program.mark("test.counter_store").unwrap(),
        );
        if let Some(guarded_race) = run.result.races.get(&guarded) {
            // Documented limitation: the classifier explores the infeasible
            // order and sees a lost update.
            assert_eq!(guarded_race.verdict, Verdict::PotentiallyHarmful);
        }
    }

    #[test]
    fn lost_update_is_state_change() {
        let run = run_pattern(|ctx| emit_lost_update(ctx, 3), RunConfig::round_robin(2));
        assert!(run.unexpected.is_empty(), "{:?}", run.unexpected);
        let mut saw_harmful = false;
        for race in run.result.races.values() {
            if race.group == OutcomeGroup::StateChange {
                saw_harmful = true;
            }
        }
        assert!(saw_harmful, "the lost update must expose a state change");
    }
}
