//! §5.4(1) *User Constructed Synchronization*: hand-rolled event handoff
//! built from plain loads and stores. iDNA logs no sequencer for it, so the
//! happens-before detector reports the flag accesses as a race — a benign
//! one.
//!
//! Two variants:
//!
//! * [`emit_handoff`] — the waiter spins on the flag. Whatever order the
//!   virtual processor imposes, the spin re-reads until the setter's store
//!   lands, so both replays converge: **No-State-Change**, correctly
//!   classified benign. This is robust because the spin loop's code is in
//!   the recorded footprint even when the recorded run never iterated.
//! * [`emit_checked_handoff`] — the waiter reads the flag *once* and only
//!   falls into a (cold) spin loop when it is unset. The recorded run sees
//!   the flag already set; the alternative order reads 0 and branches into
//!   code the recording never touched — a **Replay-Failure**. This is one
//!   of the paper's §5.2.4 "replayer limitation" misclassifications: the
//!   race is really benign, but the tool flags it potentially harmful.
//!
//! Two further variants exercise the *atomic* flag handoff that
//! `racecheck::order` recognizes statically:
//!
//! * [`emit_atomic_handoff`] — release `xchg` of 1 paired with an acquire
//!   `lock.or r, [flag], 0` spin. The publish/consume data pair is ordered
//!   in every execution (the spin cannot exit before the release), so the
//!   dynamic detector never reports it and the static order pass prunes it:
//!   zero planted races.
//! * [`emit_broken_handoff`] — same shape plus a rogue third thread that
//!   also `xchg`es the flag word. The consumer can leave its spin on the
//!   intruder's write *before* the publish lands, so the data pair is a
//!   real (benign, convergent) race; statically the second release site
//!   demotes the handoff (`rogue_write`) and the pair stays a candidate.

use tvm::isa::{Cond, Reg, RmwOp};

use super::{Ctx, Emitted};
use crate::truth::{BenignCategory, TrueVerdict};

/// Emits the spin-handoff variant (1 race, classified No-State-Change).
pub fn emit_handoff(ctx: &mut Ctx<'_>) -> Emitted {
    let flag = ctx.alloc.word();
    let mut emitted = Emitted::default();

    ctx.thread("setter");
    // Delay so the recorded waiter actually spins (keeps the loop warm in
    // the waiter's footprint — important for the alternative replay).
    ctx.busywork(6);
    ctx.b.movi(Reg::R1, 1);
    let set = ctx.mark("set_flag");
    ctx.b.store(Reg::R1, Reg::R15, flag as i64);
    ctx.clobber_scratch();
    ctx.b.halt();

    ctx.thread("waiter");
    let spin = ctx.label("spin");
    ctx.b.label(spin);
    let wait = ctx.mark("wait_flag");
    ctx.b.load(Reg::R1, Reg::R15, flag as i64).branch(Cond::Eq, Reg::R1, Reg::R15, spin);
    ctx.clobber_scratch();
    ctx.b.halt();

    emitted.push(set, wait, TrueVerdict::Benign(BenignCategory::UserConstructedSync));
    emitted
}

/// Emits the checked-handoff variant (1 race, misclassified
/// Replay-Failure although really benign).
pub fn emit_checked_handoff(ctx: &mut Ctx<'_>) -> Emitted {
    let flag = ctx.alloc.word();
    let mut emitted = Emitted::default();

    ctx.thread("setter");
    ctx.b.movi(Reg::R1, 1);
    let set = ctx.mark("set_flag");
    ctx.b.store(Reg::R1, Reg::R15, flag as i64);
    ctx.clobber_scratch();
    ctx.b.halt();

    ctx.thread("waiter");
    // Long enough that every reasonable schedule runs the setter first: the
    // recorded read sees 1 and the cold path below is never recorded.
    ctx.busywork(24);
    let check = ctx.mark("check_flag");
    let cold = ctx.label("cold_spin");
    let join = ctx.label("join");
    ctx.b.load(Reg::R1, Reg::R15, flag as i64).branch(Cond::Eq, Reg::R1, Reg::R15, cold);
    ctx.b.jump(join);
    // Cold path: a perfectly good spin loop — but unrecorded, so the
    // alternative replay fails here instead of converging.
    ctx.b.label(cold);
    ctx.b.load(Reg::R1, Reg::R15, flag as i64).branch(Cond::Eq, Reg::R1, Reg::R15, cold).jump(join);
    ctx.b.label(join);
    ctx.clobber_scratch();
    ctx.b.halt();

    emitted.push(set, check, TrueVerdict::Benign(BenignCategory::UserConstructedSync));
    emitted
}

/// Emits the producer and consumer halves of an atomic flag handoff over a
/// fresh `flag`/`data` word pair. `publish`/`consume` mark names are
/// returned so callers can plant (or not plant) the data pair.
fn emit_handoff_halves(ctx: &mut Ctx<'_>, busy: usize) -> (u64, String, String) {
    let flag = ctx.alloc.word();
    let data = ctx.alloc.word();

    ctx.thread("producer");
    // Delay the publish so a spinning consumer is the common recording.
    ctx.busywork(busy);
    ctx.b.movi(Reg::R1, 42);
    let publish = ctx.mark("publish");
    ctx.b.store(Reg::R1, Reg::R15, data as i64);
    ctx.b.movi(Reg::R2, 1);
    ctx.b.atomic_rmw(RmwOp::Xchg, Reg::R3, Reg::R15, flag as i64, Reg::R2);
    ctx.clobber_scratch();
    ctx.b.halt();

    ctx.thread("consumer");
    let spin = ctx.label("spin");
    ctx.b.label(spin);
    ctx.b.movi(Reg::R2, 0);
    ctx.b.atomic_rmw(RmwOp::Or, Reg::R1, Reg::R15, flag as i64, Reg::R2).branch(
        Cond::Eq,
        Reg::R1,
        Reg::R15,
        spin,
    );
    let consume = ctx.mark("consume");
    ctx.b.load(Reg::R4, Reg::R15, data as i64);
    ctx.clobber_scratch();
    ctx.b.halt();

    (flag, publish, consume)
}

/// Emits the validated atomic handoff (0 races: the publish/consume pair is
/// ordered in every execution, and `racecheck::order` proves it).
pub fn emit_atomic_handoff(ctx: &mut Ctx<'_>) -> Emitted {
    let _ = emit_handoff_halves(ctx, 6);
    Emitted::default()
}

/// Emits the broken atomic handoff (1 race, classified No-State-Change):
/// an intruder thread's second `xchg` of the flag word lets the consumer
/// escape its spin before the publish, and demotes the handoff statically.
pub fn emit_broken_handoff(ctx: &mut Ctx<'_>) -> Emitted {
    let (flag, publish, consume) = emit_handoff_halves(ctx, 8);
    let mut emitted = Emitted::default();

    ctx.thread("intruder");
    ctx.b.movi(Reg::R2, 2);
    ctx.b.atomic_rmw(RmwOp::Xchg, Reg::R3, Reg::R15, flag as i64, Reg::R2);
    ctx.clobber_scratch();
    ctx.b.halt();

    emitted.push(publish, consume, TrueVerdict::Benign(BenignCategory::UserConstructedSync));
    emitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::testutil::{assert_groups, run_pattern};
    use replay_race::classify::OutcomeGroup;
    use tvm::scheduler::RunConfig;

    #[test]
    fn handoff_is_no_state_change() {
        let run = run_pattern(emit_handoff, RunConfig::round_robin(2));
        assert_groups(&run, &[("set_flag", "wait_flag", OutcomeGroup::NoStateChange)]);
    }

    #[test]
    fn handoff_converges_under_many_schedules() {
        for seed in 0..10 {
            let run = run_pattern(emit_handoff, RunConfig::chunked(seed, 1, 4));
            assert!(run.unexpected.is_empty());
            for (id, group) in &run.groups {
                if let Some(g) = group {
                    assert_eq!(
                        *g,
                        OutcomeGroup::NoStateChange,
                        "seed {seed} race {id}: user sync must converge"
                    );
                }
            }
        }
    }

    #[test]
    fn atomic_handoff_is_race_free() {
        // The spin cannot exit before the release xchg, so the data pair is
        // ordered in every schedule: nothing is planted, nothing detected.
        let run = run_pattern(emit_atomic_handoff, RunConfig::round_robin(2));
        assert_groups(&run, &[]);
        for seed in 0..10 {
            let run = run_pattern(emit_atomic_handoff, RunConfig::chunked(seed, 1, 4));
            assert!(run.unexpected.is_empty(), "seed {seed}: {:?}", run.unexpected);
        }
    }

    #[test]
    fn broken_handoff_races_but_converges() {
        let run = run_pattern(emit_broken_handoff, RunConfig::round_robin(2));
        assert_groups(&run, &[("publish", "consume", OutcomeGroup::NoStateChange)]);
    }

    #[test]
    fn checked_handoff_hits_replay_failure() {
        // Round-robin with a small quantum: the setter finishes long before
        // the waiter's busywork ends, so the recorded check reads 1.
        let run = run_pattern(emit_checked_handoff, RunConfig::round_robin(2));
        assert_groups(&run, &[("set_flag", "check_flag", OutcomeGroup::ReplayFailure)]);
    }
}
