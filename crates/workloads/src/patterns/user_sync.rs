//! §5.4(1) *User Constructed Synchronization*: hand-rolled event handoff
//! built from plain loads and stores. iDNA logs no sequencer for it, so the
//! happens-before detector reports the flag accesses as a race — a benign
//! one.
//!
//! Two variants:
//!
//! * [`emit_handoff`] — the waiter spins on the flag. Whatever order the
//!   virtual processor imposes, the spin re-reads until the setter's store
//!   lands, so both replays converge: **No-State-Change**, correctly
//!   classified benign. This is robust because the spin loop's code is in
//!   the recorded footprint even when the recorded run never iterated.
//! * [`emit_checked_handoff`] — the waiter reads the flag *once* and only
//!   falls into a (cold) spin loop when it is unset. The recorded run sees
//!   the flag already set; the alternative order reads 0 and branches into
//!   code the recording never touched — a **Replay-Failure**. This is one
//!   of the paper's §5.2.4 "replayer limitation" misclassifications: the
//!   race is really benign, but the tool flags it potentially harmful.

use tvm::isa::{Cond, Reg};

use super::{Ctx, Emitted};
use crate::truth::{BenignCategory, TrueVerdict};

/// Emits the spin-handoff variant (1 race, classified No-State-Change).
pub fn emit_handoff(ctx: &mut Ctx<'_>) -> Emitted {
    let flag = ctx.alloc.word();
    let mut emitted = Emitted::default();

    ctx.thread("setter");
    // Delay so the recorded waiter actually spins (keeps the loop warm in
    // the waiter's footprint — important for the alternative replay).
    ctx.busywork(6);
    ctx.b.movi(Reg::R1, 1);
    let set = ctx.mark("set_flag");
    ctx.b.store(Reg::R1, Reg::R15, flag as i64);
    ctx.clobber_scratch();
    ctx.b.halt();

    ctx.thread("waiter");
    let spin = ctx.label("spin");
    ctx.b.label(spin);
    let wait = ctx.mark("wait_flag");
    ctx.b.load(Reg::R1, Reg::R15, flag as i64).branch(Cond::Eq, Reg::R1, Reg::R15, spin);
    ctx.clobber_scratch();
    ctx.b.halt();

    emitted.push(set, wait, TrueVerdict::Benign(BenignCategory::UserConstructedSync));
    emitted
}

/// Emits the checked-handoff variant (1 race, misclassified
/// Replay-Failure although really benign).
pub fn emit_checked_handoff(ctx: &mut Ctx<'_>) -> Emitted {
    let flag = ctx.alloc.word();
    let mut emitted = Emitted::default();

    ctx.thread("setter");
    ctx.b.movi(Reg::R1, 1);
    let set = ctx.mark("set_flag");
    ctx.b.store(Reg::R1, Reg::R15, flag as i64);
    ctx.clobber_scratch();
    ctx.b.halt();

    ctx.thread("waiter");
    // Long enough that every reasonable schedule runs the setter first: the
    // recorded read sees 1 and the cold path below is never recorded.
    ctx.busywork(24);
    let check = ctx.mark("check_flag");
    let cold = ctx.label("cold_spin");
    let join = ctx.label("join");
    ctx.b.load(Reg::R1, Reg::R15, flag as i64).branch(Cond::Eq, Reg::R1, Reg::R15, cold);
    ctx.b.jump(join);
    // Cold path: a perfectly good spin loop — but unrecorded, so the
    // alternative replay fails here instead of converging.
    ctx.b.label(cold);
    ctx.b.load(Reg::R1, Reg::R15, flag as i64).branch(Cond::Eq, Reg::R1, Reg::R15, cold).jump(join);
    ctx.b.label(join);
    ctx.clobber_scratch();
    ctx.b.halt();

    emitted.push(set, check, TrueVerdict::Benign(BenignCategory::UserConstructedSync));
    emitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::testutil::{assert_groups, run_pattern};
    use replay_race::classify::OutcomeGroup;
    use tvm::scheduler::RunConfig;

    #[test]
    fn handoff_is_no_state_change() {
        let run = run_pattern(emit_handoff, RunConfig::round_robin(2));
        assert_groups(&run, &[("set_flag", "wait_flag", OutcomeGroup::NoStateChange)]);
    }

    #[test]
    fn handoff_converges_under_many_schedules() {
        for seed in 0..10 {
            let run = run_pattern(emit_handoff, RunConfig::chunked(seed, 1, 4));
            assert!(run.unexpected.is_empty());
            for (id, group) in &run.groups {
                if let Some(g) = group {
                    assert_eq!(
                        *g,
                        OutcomeGroup::NoStateChange,
                        "seed {seed} race {id}: user sync must converge"
                    );
                }
            }
        }
    }

    #[test]
    fn checked_handoff_hits_replay_failure() {
        // Round-robin with a small quantum: the setter finishes long before
        // the waiter's busywork ends, so the recorded check reads 1.
        let run = run_pattern(emit_checked_handoff, RunConfig::round_robin(2));
        assert_groups(&run, &[("set_flag", "check_flag", OutcomeGroup::ReplayFailure)]);
    }
}
