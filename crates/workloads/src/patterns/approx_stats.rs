//! §5.2.4 *Approximate Computation*: statistics updated without
//! synchronization because the developers chose to tolerate lost updates
//! rather than pay for locks. These races are **really benign** (the
//! imprecision is intended) but they *do* change program state, so the
//! replay classifier marks them potentially harmful — the paper's dominant
//! misclassification (23 of 29).
//!
//! * [`emit_counter`] — two workers run the same unsynchronized
//!   load-increment-store on a shared counter, and a reporter prints the
//!   (approximate) total. Plants 3 races, expected **State-Change**.
//! * [`emit_sampler`] — a sampler reads the counter once, late, and
//!   branches to a cold "nothing happened yet" path only when it reads
//!   zero. The alternative order of the (first-store, sample) instance
//!   reads zero and lands in unrecorded code: **Replay-Failure**. Plants 1
//!   race.

use tvm::isa::{Cond, Reg};

use super::{Ctx, Emitted};
use crate::truth::{BenignCategory, TrueVerdict};

/// Emits the racy statistics counter with a printing reporter (3 races, all
/// expected State-Change).
pub fn emit_counter(ctx: &mut Ctx<'_>, iters: u64) -> Emitted {
    assert!(iters >= 1);
    let counter = ctx.alloc.word();
    let mut emitted = Emitted::default();

    // Shared increment function so both workers have identical racing pcs.
    let inc_fn = ctx.label("inc_fn");
    for w in 0..2 {
        ctx.thread(&format!("stat_worker{w}"));
        let top = ctx.label(&format!("w{w}_top"));
        ctx.b.movi(Reg::R7, iters).label(top).call(inc_fn).subi(Reg::R7, Reg::R7, 1).branch(
            Cond::Ne,
            Reg::R7,
            Reg::R15,
            top,
        );
        ctx.clobber_scratch();
        ctx.b.halt();
    }

    ctx.thread("stat_reporter");
    // Sample mid-flight.
    ctx.busywork(8);
    let report = ctx.mark("report_total");
    ctx.b.load(Reg::R1, Reg::R15, counter as i64);
    ctx.b.print(Reg::R1);
    ctx.clobber_scratch();
    ctx.b.movi(Reg::R0, 0).halt();

    ctx.b.label(inc_fn);
    let load = ctx.mark("stat_load");
    ctx.b.load(Reg::R1, Reg::R15, counter as i64).addi(Reg::R1, Reg::R1, 1);
    let store = ctx.mark("stat_store");
    ctx.b.store(Reg::R1, Reg::R15, counter as i64).movi(Reg::R1, 0).ret();

    let benign = TrueVerdict::Benign(BenignCategory::ApproximateComputation);
    emitted.push(load.clone(), store.clone(), benign);
    emitted.push(store.clone(), store.clone(), benign);
    emitted.push(store, report, benign);
    emitted
}

/// Emits the zero-check sampler over its own counter with one incrementing
/// worker (1 race, expected Replay-Failure).
pub fn emit_sampler(ctx: &mut Ctx<'_>, iters: u64) -> Emitted {
    let counter = ctx.alloc.word();
    let mut emitted = Emitted::default();

    ctx.thread("sampled_worker");
    let top = ctx.label("top");
    ctx.b.movi(Reg::R7, iters).label(top);
    ctx.b.load(Reg::R1, Reg::R15, counter as i64).addi(Reg::R1, Reg::R1, 1);
    let store = ctx.mark("sampled_store");
    ctx.b.store(Reg::R1, Reg::R15, counter as i64).subi(Reg::R7, Reg::R7, 1).branch(
        Cond::Ne,
        Reg::R7,
        Reg::R15,
        top,
    );
    ctx.clobber_scratch();
    ctx.b.halt();

    ctx.thread("sampler");
    // Sample after the worker has certainly started: the recorded value is
    // non-zero, keeping the zero path cold.
    ctx.busywork(24);
    let sample = ctx.mark("sample_total");
    let cold = ctx.label("cold_zero");
    let join = ctx.label("join");
    ctx.b
        .load(Reg::R1, Reg::R15, counter as i64)
        .branch(Cond::Eq, Reg::R1, Reg::R15, cold)
        .jump(join);
    ctx.b.label(cold);
    // "No activity yet" handling — benign, but never recorded.
    ctx.b.movi(Reg::R4, 1).movi(Reg::R4, 0).jump(join);
    ctx.b.label(join);
    ctx.clobber_scratch();
    ctx.b.halt();

    emitted.push(store, sample, TrueVerdict::Benign(BenignCategory::ApproximateComputation));
    emitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::testutil::{assert_groups, run_pattern};
    use replay_race::classify::OutcomeGroup;
    use tvm::scheduler::RunConfig;

    #[test]
    fn counter_races_are_state_change() {
        // A fine-grained schedule interleaves the increments, so some
        // instance exposes a lost update.
        let run = run_pattern(|ctx| emit_counter(ctx, 4), RunConfig::round_robin(2));
        assert!(run.unexpected.is_empty(), "{:?}", run.unexpected);
        for (id, group) in &run.groups {
            if let Some(g) = group {
                assert_eq!(*g, OutcomeGroup::StateChange, "race {id}");
            }
        }
        // At least the increment pair must be detected and state-changing.
        let detected = run.groups.values().flatten().count();
        assert!(detected >= 2, "expected >= 2 detected races, got {detected}");
    }

    #[test]
    fn sampler_is_replay_failure() {
        let run = run_pattern(|ctx| emit_sampler(ctx, 3), RunConfig::round_robin(1));
        assert_groups(&run, &[("sampled_store", "sample_total", OutcomeGroup::ReplayFailure)]);
    }
}
