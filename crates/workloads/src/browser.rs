//! The Internet-Explorer stand-in for the paper's §5.1 overhead study.
//!
//! The paper measures recording (≈6×), replay (≈10×), happens-before
//! analysis (≈45×) and classification (≈280×) overheads on an IE session
//! with 27 threads. This workload models a browser page load:
//!
//! * a main thread that dispatches `jobs` page resources through a shared,
//!   CAS-lock-protected work queue,
//! * `fetchers` that pull jobs and "download" (compute) content into
//!   per-job buffers,
//! * `parsers` that transform the content,
//! * a renderer that spins until everything is parsed and aggregates,
//! * racy statistics counters sprinkled through all stages (as real
//!   browsers had), so the analysis has races to chew on — the paper found
//!   2,196 dynamic race instances in its IE run.

use std::sync::Arc;

use tvm::isa::{BinOp, Cond, Reg, RmwOp};
use tvm::{Program, ProgramBuilder};

/// Browser-workload sizing.
#[derive(Copy, Clone, Debug)]
pub struct BrowserConfig {
    /// Number of fetcher threads.
    pub fetchers: usize,
    /// Number of parser threads.
    pub parsers: usize,
    /// Number of page resources to process.
    pub jobs: u64,
    /// Compute work per job (loop iterations).
    pub work: u64,
}

impl Default for BrowserConfig {
    fn default() -> Self {
        BrowserConfig { fetchers: 3, parsers: 2, jobs: 8, work: 32 }
    }
}

impl BrowserConfig {
    /// A paper-scale configuration: 27 threads, as in the IE study.
    #[must_use]
    pub fn paper_scale() -> Self {
        BrowserConfig { fetchers: 14, parsers: 12, jobs: 64, work: 48 }
    }

    /// Total thread count (fetchers + parsers + main + renderer).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.fetchers + self.parsers + 2
    }
}

// Global layout.
const QLOCK: u64 = 0x10; // CAS spin lock protecting the queue head
const QHEAD: u64 = 0x11; // next job to fetch
const FETCHED: u64 = 0x12; // per-job fetched flags base (jobs words)
                           // Racy statistics (intentionally unsynchronized, like the paper's apps).
const STAT_FETCH: u64 = 0x90;
const STAT_PARSE: u64 = 0x91;
const PARSED_COUNT: u64 = 0x92; // atomically maintained parse counter
const CONFIG: u64 = 0x93; // page configuration, published once by main
const CONFIG_READY: u64 = 0x94; // atomic release flag guarding CONFIG
const CONTENT: u64 = 0x100; // per-job content words
const PARSED: u64 = 0x200; // per-job parsed flags

/// Builds the browser workload.
#[must_use]
pub fn browser_program(cfg: &BrowserConfig) -> Arc<Program> {
    assert!(cfg.jobs <= 0x100, "job table overflows the global layout");
    let mut b = ProgramBuilder::new();

    // --- helpers -----------------------------------------------------
    // Lock: spin on CAS(QLOCK, 0 -> 1); unlock: xchg 0.
    let emit_lock = |b: &mut ProgramBuilder, ns: &str, n: usize| {
        let acquire = b.fresh_label(&format!("{ns}{n}_acquire"));
        b.label(acquire)
            .movi(Reg::R10, 0)
            .movi(Reg::R11, 1)
            .cas(Reg::R12, Reg::R15, QLOCK as i64, Reg::R10, Reg::R11)
            .branch(Cond::Eq, Reg::R12, Reg::R15, acquire);
    };
    let emit_unlock = |b: &mut ProgramBuilder| {
        b.movi(Reg::R10, 0).atomic_rmw(RmwOp::Xchg, Reg::R12, Reg::R15, QLOCK as i64, Reg::R10);
    };

    // --- main: seed the queue ----------------------------------------
    b.thread("main");
    b.movi(Reg::R1, 0).store(Reg::R1, Reg::R15, QHEAD as i64);
    // Publish the page configuration through a validated flag handoff:
    // plain store of the value, then an atomic release of CONFIG_READY.
    // The renderer acquires it with an atomic spin — the static order pass
    // proves the pair ordered, so it never becomes a candidate.
    b.movi(Reg::R4, cfg.jobs * 2 + 1).store(Reg::R4, Reg::R15, CONFIG as i64);
    b.movi(Reg::R5, 1).atomic_rmw(RmwOp::Xchg, Reg::R6, Reg::R15, CONFIG_READY as i64, Reg::R5);
    // Publish "open for business" through the lock so fetchers can start.
    emit_lock(&mut b, "main", 0);
    emit_unlock(&mut b);
    b.halt();

    // --- fetchers ------------------------------------------------------
    for fi in 0..cfg.fetchers {
        b.thread(&format!("fetcher{fi}"));
        let next_job = b.fresh_label(&format!("f{fi}_next"));
        let done = b.fresh_label(&format!("f{fi}_done"));
        b.label(next_job);
        // j = pop(queue) under the lock.
        emit_lock(&mut b, "f", fi);
        b.load(Reg::R1, Reg::R15, QHEAD as i64).addi(Reg::R2, Reg::R1, 1).store(
            Reg::R2,
            Reg::R15,
            QHEAD as i64,
        );
        emit_unlock(&mut b);
        b.bini(BinOp::Sub, Reg::R3, Reg::R1, cfg.jobs).branch(Cond::Eq, Reg::R3, Reg::R15, done);
        // Out-of-range pops (> jobs) also stop.
        b.bini(BinOp::Div, Reg::R3, Reg::R1, cfg.jobs + 1).branch(
            Cond::Ne,
            Reg::R3,
            Reg::R15,
            done,
        );
        // "Download": content[j] = sum of `work` values derived from j.
        let work_top = b.fresh_label(&format!("f{fi}_work"));
        b.movi(Reg::R4, 0) // acc
            .movi(Reg::R5, 0) // k
            .label(work_top)
            .bin(BinOp::Add, Reg::R4, Reg::R4, Reg::R5)
            .addi(Reg::R4, Reg::R4, 3)
            .addi(Reg::R5, Reg::R5, 1)
            .bini(BinOp::Sub, Reg::R6, Reg::R5, cfg.work)
            .branch(Cond::Ne, Reg::R6, Reg::R15, work_top);
        b.movi(Reg::R7, CONTENT).add(Reg::R7, Reg::R7, Reg::R1).store(Reg::R4, Reg::R7, 0);
        // fetched[j] = 1 (plain store: consumed by parsers via spin — a
        // user-constructed-synchronization race).
        b.movi(Reg::R8, FETCHED).add(Reg::R8, Reg::R8, Reg::R1).movi(Reg::R9, 1).store(
            Reg::R9,
            Reg::R8,
            0,
        );
        // Racy statistics: stat_fetch++ without synchronization.
        b.load(Reg::R9, Reg::R15, STAT_FETCH as i64).addi(Reg::R9, Reg::R9, 1).store(
            Reg::R9,
            Reg::R15,
            STAT_FETCH as i64,
        );
        b.jump(next_job);
        b.label(done);
        b.halt();
    }

    // --- parsers -------------------------------------------------------
    for pi in 0..cfg.parsers {
        b.thread(&format!("parser{pi}"));
        let next = b.fresh_label(&format!("p{pi}_next"));
        let wait = b.fresh_label(&format!("p{pi}_wait"));
        let done = b.fresh_label(&format!("p{pi}_done"));
        // Parsers statically partition jobs: job = pi, pi + parsers, ...
        b.movi(Reg::R1, pi as u64);
        b.label(next);
        b.bini(BinOp::Div, Reg::R3, Reg::R1, cfg.jobs).branch(Cond::Ne, Reg::R3, Reg::R15, done);
        // Wait for fetched[j] (racy flag read).
        b.movi(Reg::R8, FETCHED).add(Reg::R8, Reg::R8, Reg::R1);
        b.label(wait);
        b.load(Reg::R9, Reg::R8, 0).branch(Cond::Eq, Reg::R9, Reg::R15, wait);
        // Parse: parsed[j] = content[j] * 2 + 1.
        b.movi(Reg::R7, CONTENT)
            .add(Reg::R7, Reg::R7, Reg::R1)
            .load(Reg::R4, Reg::R7, 0)
            .bini(BinOp::Mul, Reg::R4, Reg::R4, 2)
            .addi(Reg::R4, Reg::R4, 1)
            .movi(Reg::R7, PARSED)
            .add(Reg::R7, Reg::R7, Reg::R1)
            .store(Reg::R4, Reg::R7, 0);
        // Racy statistics + an atomic progress counter (the proper one).
        b.load(Reg::R9, Reg::R15, STAT_PARSE as i64).addi(Reg::R9, Reg::R9, 1).store(
            Reg::R9,
            Reg::R15,
            STAT_PARSE as i64,
        );
        b.movi(Reg::R9, 1).atomic_rmw(RmwOp::Add, Reg::R10, Reg::R15, PARSED_COUNT as i64, Reg::R9);
        b.bini(BinOp::Add, Reg::R1, Reg::R1, cfg.parsers as u64).jump(next);
        b.label(done);
        b.halt();
    }

    // --- renderer --------------------------------------------------------
    b.thread("renderer");
    let rcfg = b.fresh_label("r_cfg");
    let rwait = b.fresh_label("r_wait");
    let ragg = b.fresh_label("r_agg");
    let rsum = b.fresh_label("r_sum");
    let rdone = b.fresh_label("r_done");
    // Acquire the page configuration main published (validated handoff:
    // identity-RMW spin until CONFIG_READY is nonzero, then a plain read
    // of CONFIG that the order pass proves race-free).
    b.label(rcfg);
    b.movi(Reg::R2, 0)
        .atomic_rmw(RmwOp::Or, Reg::R1, Reg::R15, CONFIG_READY as i64, Reg::R2)
        .branch(Cond::Eq, Reg::R1, Reg::R15, rcfg);
    b.load(Reg::R14, Reg::R15, CONFIG as i64);
    // Wait (atomically) for all jobs parsed.
    b.label(rwait);
    b.movi(Reg::R2, 0)
        .atomic_rmw(RmwOp::Or, Reg::R1, Reg::R15, PARSED_COUNT as i64, Reg::R2)
        .bini(BinOp::Sub, Reg::R3, Reg::R1, cfg.jobs)
        .branch(Cond::Ne, Reg::R3, Reg::R15, rwait);
    // Aggregate parsed values and print the page "checksum". The loop is
    // top-tested with a division guard (`R5 / jobs == 0  ⟺  R5 < jobs`) so
    // the index into PARSED stays bounded even after interval widening.
    b.movi(Reg::R4, 0).movi(Reg::R5, 0).label(ragg);
    b.bini(BinOp::Div, Reg::R3, Reg::R5, cfg.jobs).branch(Cond::Ne, Reg::R3, Reg::R15, rsum);
    b.movi(Reg::R7, PARSED)
        .add(Reg::R7, Reg::R7, Reg::R5)
        .load(Reg::R6, Reg::R7, 0)
        .add(Reg::R4, Reg::R4, Reg::R6)
        .addi(Reg::R5, Reg::R5, 1)
        .jump(ragg);
    b.label(rsum);
    // Fold the handed-off configuration into the checksum: it is ordered,
    // so the rendered value stays schedule-independent.
    b.add(Reg::R4, Reg::R4, Reg::R14);
    b.print(Reg::R4);
    // Read the racy stats, as a browser's telemetry would.
    b.load(Reg::R1, Reg::R15, STAT_FETCH as i64)
        .load(Reg::R2, Reg::R15, STAT_PARSE as i64)
        .add(Reg::R1, Reg::R1, Reg::R2)
        .print(Reg::R1);
    b.jump(rdone);
    b.label(rdone);
    b.halt();

    Arc::new(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use replay_race::pipeline::{run_pipeline, PipelineConfig};
    use tvm::machine::Machine;
    use tvm::scheduler::{run, RunConfig};

    #[test]
    fn browser_completes_and_renders() {
        let p = browser_program(&BrowserConfig::default());
        let mut m = Machine::new(p);
        let summary = run(&mut m, &RunConfig::round_robin(8).with_max_steps(5_000_000), &mut ());
        assert!(summary.completed, "browser run must terminate");
        assert!(summary.faults.is_empty(), "{:?}", summary.faults);
        // The renderer printed a checksum and the (approximate) stats.
        assert!(m.output().len() >= 2);
        assert!(m.output()[0].value > 0);
    }

    #[test]
    fn checksum_is_schedule_independent() {
        // The data path is properly ordered (locks + flag spins), so the
        // rendered checksum must not depend on the schedule; only the racy
        // stats may vary.
        let p = browser_program(&BrowserConfig::default());
        let mut checksums = Vec::new();
        for seed in 0..4u64 {
            let mut m = Machine::new(p.clone());
            let summary =
                run(&mut m, &RunConfig::chunked(seed, 1, 8).with_max_steps(5_000_000), &mut ());
            assert!(summary.completed, "seed {seed}");
            checksums.push(m.output()[0].value);
        }
        assert!(checksums.windows(2).all(|w| w[0] == w[1]), "{checksums:?}");
    }

    #[test]
    fn browser_pipeline_finds_the_planted_races() {
        let p = browser_program(&BrowserConfig::default());
        let result = run_pipeline(
            &p,
            &PipelineConfig::new(RunConfig::chunked(1, 1, 8).with_max_steps(5_000_000)),
        )
        .expect("pipeline");
        // The racy stats counters and fetched-flag handoffs are real races.
        assert!(result.detected.unique_races() > 0);
        assert!(result.detected.instance_count() > result.detected.unique_races());
    }
}
