//! The evaluation corpus: one multi-service program, 18 recorded
//! executions (paper §5.1).
//!
//! The paper records 18 executions of various Vista/IE services. Here, the
//! "binary" is a single program composed of every pattern instance, each
//! gated by an enable word; an *execution* selects a subset of services
//! (instances) and a scheduler seed. Because only the initial globals
//! differ, static pcs are identical across executions and race identities
//! merge across the whole corpus — exactly like re-running the same binary
//! under different scenarios.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use tvm::scheduler::RunConfig;
use tvm::{Program, ProgramBuilder};

use crate::patterns::{
    approx_stats, both_values, disjoint_bits, double_check, harmful, redundant_write, user_sync,
    value_impact,
};
use crate::patterns::{Ctx, Emitted, GlobalAlloc};
use crate::truth::GroundTruthRace;

/// One pattern instance of the corpus.
struct InstanceDef {
    id: &'static str,
    emit: fn(&mut Ctx<'_>) -> Emitted,
}

fn rw_small(ctx: &mut Ctx<'_>) -> Emitted {
    redundant_write::emit(
        ctx,
        &redundant_write::RedundantWriteConfig { writers: 2, readers: 1, value: 0x1D },
    )
}

fn rw_medium(ctx: &mut Ctx<'_>) -> Emitted {
    redundant_write::emit(
        ctx,
        &redundant_write::RedundantWriteConfig { writers: 2, readers: 2, value: 0x2E },
    )
}

fn rw_wide(ctx: &mut Ctx<'_>) -> Emitted {
    redundant_write::emit(
        ctx,
        &redundant_write::RedundantWriteConfig { writers: 2, readers: 2, value: 0x3F },
    )
}

fn bv_watermark(ctx: &mut Ctx<'_>) -> Emitted {
    both_values::emit_watermark(ctx, 4)
}

fn bv_version_warm(ctx: &mut Ctx<'_>) -> Emitted {
    both_values::emit_version_switch(ctx, false)
}

fn bv_version_cold(ctx: &mut Ctx<'_>) -> Emitted {
    both_values::emit_version_switch(ctx, true)
}

fn db_three(ctx: &mut Ctx<'_>) -> Emitted {
    disjoint_bits::emit(ctx, 3, 4)
}

fn db_two(ctx: &mut Ctx<'_>) -> Emitted {
    disjoint_bits::emit(ctx, 2, 3)
}

fn db_cold(ctx: &mut Ctx<'_>) -> Emitted {
    disjoint_bits::emit_cold_bit(ctx, 6)
}

fn ax_counter_short(ctx: &mut Ctx<'_>) -> Emitted {
    approx_stats::emit_counter(ctx, 3)
}

fn ax_counter_mid(ctx: &mut Ctx<'_>) -> Emitted {
    approx_stats::emit_counter(ctx, 5)
}

fn ax_counter_long(ctx: &mut Ctx<'_>) -> Emitted {
    approx_stats::emit_counter(ctx, 8)
}

fn ax_sampler(ctx: &mut Ctx<'_>) -> Emitted {
    approx_stats::emit_sampler(ctx, 3)
}

fn refcount(ctx: &mut Ctx<'_>) -> Emitted {
    harmful::emit_refcount(ctx, 4)
}

fn pub_cold2(ctx: &mut Ctx<'_>) -> Emitted {
    harmful::emit_publication(ctx, true)
}

fn pub_cold3(ctx: &mut Ctx<'_>) -> Emitted {
    harmful::emit_publication(ctx, true)
}

fn status_beacon(ctx: &mut Ctx<'_>) -> Emitted {
    harmful::emit_status_beacon(ctx, 10)
}

fn rw_status(ctx: &mut Ctx<'_>) -> Emitted {
    redundant_write::emit(
        ctx,
        &redundant_write::RedundantWriteConfig { writers: 2, readers: 1, value: 0x51 },
    )
}

fn db_bitfield(ctx: &mut Ctx<'_>) -> Emitted {
    disjoint_bits::emit(ctx, 2, 3)
}

/// Instance registry, in emission order. Never reorder entries: static pcs
/// (and therefore race identities recorded in EXPERIMENTS.md) depend on it.
const INSTANCES: &[InstanceDef] = &[
    // User-constructed synchronization: 6 spin handoffs + 2 checked.
    InstanceDef { id: "us_h1", emit: user_sync::emit_handoff },
    InstanceDef { id: "us_h2", emit: user_sync::emit_handoff },
    InstanceDef { id: "us_h3", emit: user_sync::emit_handoff },
    InstanceDef { id: "us_h4", emit: user_sync::emit_handoff },
    InstanceDef { id: "us_h5", emit: user_sync::emit_handoff },
    InstanceDef { id: "us_h6", emit: user_sync::emit_handoff },
    InstanceDef { id: "us_c1", emit: user_sync::emit_checked_handoff },
    InstanceDef { id: "us_c2", emit: user_sync::emit_checked_handoff },
    // Double checks.
    InstanceDef { id: "dc_s1", emit: double_check::emit_shared },
    InstanceDef { id: "dc_c1", emit: double_check::emit_cold },
    // Both values valid.
    InstanceDef { id: "bv_w1", emit: bv_watermark },
    InstanceDef { id: "bv_v1", emit: bv_version_warm },
    InstanceDef { id: "bv_c1", emit: bv_version_cold },
    InstanceDef { id: "bv_c2", emit: bv_version_cold },
    // Redundant writes: 3 + 5 + 5 = 13 races.
    InstanceDef { id: "rw1", emit: rw_small },
    InstanceDef { id: "rw2", emit: rw_medium },
    InstanceDef { id: "rw3", emit: rw_wide },
    // Disjoint bit manipulation: 3 + 2 + 2 + (1 + 1 cold) = 9 races.
    InstanceDef { id: "db1", emit: db_three },
    InstanceDef { id: "db2", emit: db_two },
    InstanceDef { id: "db3", emit: db_two },
    InstanceDef { id: "db_c1", emit: db_cold },
    // Approximate computation: 5 counters (15 races) + 8 samplers (8).
    InstanceDef { id: "ax1", emit: ax_counter_short },
    InstanceDef { id: "ax2", emit: ax_counter_mid },
    InstanceDef { id: "ax3", emit: ax_counter_long },
    InstanceDef { id: "ax4", emit: ax_counter_short },
    InstanceDef { id: "ax5", emit: ax_counter_mid },
    InstanceDef { id: "ax_s1", emit: ax_sampler },
    InstanceDef { id: "ax_s2", emit: ax_sampler },
    InstanceDef { id: "ax_s3", emit: ax_sampler },
    InstanceDef { id: "ax_s4", emit: ax_sampler },
    InstanceDef { id: "ax_s5", emit: ax_sampler },
    InstanceDef { id: "ax_s6", emit: ax_sampler },
    InstanceDef { id: "ax_s7", emit: ax_sampler },
    InstanceDef { id: "ax_s8", emit: ax_sampler },
    // Harmful: refcount (2) + beacon (1) + publications (2) + dangling (2) = 7.
    InstanceDef { id: "hf_rc", emit: refcount },
    InstanceDef { id: "hf_sb", emit: status_beacon },
    InstanceDef { id: "hf_p2", emit: pub_cold2 },
    InstanceDef { id: "hf_p3", emit: pub_cold3 },
    InstanceDef { id: "hf_d1", emit: harmful::emit_dangling },
    // Idiom exemplars (mirror examples/asm/idiom_*.tasm, one per Table 2
    // recognizer): appended so earlier pcs stay stable.
    InstanceDef { id: "us_x1", emit: user_sync::emit_handoff },
    InstanceDef { id: "dc_x1", emit: double_check::emit_shared },
    InstanceDef { id: "rw_x1", emit: rw_status },
    InstanceDef { id: "db_x1", emit: db_bitfield },
    // Atomic flag handoffs for the static order pass (D11): one validated
    // (race-free, statically pruned), one demoted by a rogue release
    // (really races, stays a candidate). Appended so earlier pcs stay
    // stable.
    InstanceDef { id: "ho_x1", emit: user_sync::emit_atomic_handoff },
    InstanceDef { id: "ho_x2", emit: user_sync::emit_broken_handoff },
    // Value-impact exemplars for the taint pass (D13): one race whose
    // value dies before anything observable, one that flows into the
    // output stream. Appended so earlier pcs stay stable.
    InstanceDef { id: "im_x1", emit: value_impact::emit_dead_value },
    InstanceDef { id: "im_x2", emit: value_impact::emit_sink_value },
    InstanceDef { id: "im_x3", emit: value_impact::emit_dead_block },
];

/// One recorded execution: a service mix and a schedule.
#[derive(Clone, Debug)]
pub struct Execution {
    pub name: &'static str,
    /// Instance ids enabled in this run.
    pub enabled: Vec<&'static str>,
    pub schedule: RunConfig,
}

/// The paper's 18 executions plus the two value-impact feeds (e19/e20).
/// Seeds were chosen once and pinned; they determine which race instances
/// each execution contributes.
#[must_use]
pub fn corpus_executions() -> Vec<Execution> {
    let chunked = |seed| RunConfig::chunked(seed, 1, 6).with_max_steps(400_000);
    let rr = |q| RunConfig::round_robin(q).with_max_steps(400_000);
    vec![
        Execution {
            name: "e01_shell_startup",
            enabled: vec!["us_h1", "rw1", "ax1", "us_x1", "ho_x1"],
            schedule: rr(2),
        },
        Execution {
            name: "e02_settings_service",
            enabled: vec!["us_h2", "dc_s1", "rw2", "dc_x1"],
            schedule: rr(1),
        },
        Execution {
            name: "e03_page_load",
            enabled: vec!["us_h3", "bv_w1", "ax2"],
            schedule: rr(3),
        },
        Execution {
            name: "e04_media_scan",
            enabled: vec!["us_h4", "db1", "ax_s1", "db_x1", "ho_x2"],
            schedule: rr(2),
        },
        Execution {
            name: "e05_session_teardown",
            enabled: vec!["us_h5", "rw3", "hf_rc"],
            schedule: chunked(15),
        },
        Execution {
            name: "e06_theme_switch",
            enabled: vec!["us_h6", "bv_v1", "ax3"],
            schedule: rr(2),
        },
        Execution { name: "e07_indexer", enabled: vec!["us_c1", "db2", "ax_s2"], schedule: rr(2) },
        Execution {
            name: "e08_download_manager",
            enabled: vec!["us_c2", "ax4", "hf_sb", "rw_x1"],
            schedule: rr(2),
        },
        Execution {
            name: "e09_font_cache",
            enabled: vec!["dc_c1", "ax_s3", "db3"],
            schedule: rr(2),
        },
        Execution {
            name: "e10_history_flush",
            enabled: vec!["bv_c1", "ax5", "rw1"],
            schedule: rr(2),
        },
        Execution {
            name: "e11_favicon_fetch",
            enabled: vec!["bv_c2", "ax_s4", "us_h1"],
            schedule: rr(2),
        },
        Execution {
            name: "e12_print_spooler",
            enabled: vec!["db_c1", "ax_s5", "hf_p2"],
            schedule: rr(2),
        },
        Execution {
            name: "e13_tab_close",
            enabled: vec!["hf_rc", "ax1", "us_h2"],
            schedule: chunked(23),
        },
        Execution {
            name: "e14_cache_eviction",
            enabled: vec!["hf_d1", "ax_s6", "rw2"],
            schedule: rr(2),
        },
        Execution {
            name: "e15_form_autofill",
            enabled: vec!["ax_s7", "bv_w1", "us_h3"],
            schedule: rr(3),
        },
        Execution {
            name: "e16_update_check",
            enabled: vec!["ax_s8", "dc_s1", "db1"],
            schedule: chunked(26),
        },
        Execution {
            name: "e17_gc_pass",
            enabled: vec!["hf_rc", "ax2", "bv_v1", "hf_p3"],
            schedule: chunked(27),
        },
        Execution {
            name: "e18_stress_mix",
            enabled: vec!["us_h4", "us_h5", "us_h6", "ax3", "hf_rc", "rw3"],
            schedule: chunked(28),
        },
        // Appended with the D13 value-impact exemplars so the earlier
        // executions' logs and pinned numbers stay byte-stable.
        Execution { name: "e19_impact_probe", enabled: vec!["im_x1", "im_x2"], schedule: rr(1) },
        // Bulk dead-value feed: the single-word exemplar again under the
        // other scheduler family plus the scratch-word bank, so the
        // skip-unreachable replay savings rest on more than one execution.
        Execution {
            name: "e20_impact_sweep",
            enabled: vec!["im_x1", "im_x3"],
            schedule: chunked(31),
        },
    ]
}

/// Builds the corpus program with the given instances enabled. The
/// instruction stream is identical for every enable set; only the initial
/// globals differ.
#[must_use]
pub fn corpus_program(enabled: &BTreeSet<&str>) -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    let mut alloc = GlobalAlloc::new();
    // Reserve one enable word per instance, in registry order.
    let mut gates: HashMap<&'static str, u64> = HashMap::new();
    for inst in INSTANCES {
        gates.insert(inst.id, alloc.word());
    }
    for inst in INSTANCES {
        let gate = gates[inst.id];
        b.global(gate, u64::from(enabled.contains(inst.id)));
        let mut ctx = Ctx::new(&mut b, &mut alloc, inst.id, Some(gate));
        let _ = (inst.emit)(&mut ctx);
    }
    Arc::new(b.build())
}

/// The complete ground-truth manifest of the corpus (every planted race of
/// every instance).
#[must_use]
pub fn corpus_manifest() -> Vec<GroundTruthRace> {
    // Emit into a scratch builder to collect manifests; mark names only
    // depend on the namespace, not on where instructions land.
    let mut b = ProgramBuilder::new();
    let mut alloc = GlobalAlloc::new();
    let mut races = Vec::new();
    for inst in INSTANCES {
        let mut ctx = Ctx::new(&mut b, &mut alloc, inst.id, None);
        races.extend((inst.emit)(&mut ctx).races);
    }
    races
}

/// Number of registered instances (for tests).
#[must_use]
pub fn instance_count() -> usize {
    INSTANCES.len()
}

/// The registered pattern-instance ids, in emission order — lets tests and
/// ablations exercise each workload pattern in isolation via
/// [`corpus_program`] with a single-id enable set.
#[must_use]
pub fn instance_ids() -> Vec<&'static str> {
    INSTANCES.iter().map(|i| i.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_shape_is_stable_across_enable_sets() {
        let all: BTreeSet<&str> = INSTANCES.iter().map(|i| i.id).collect();
        let none = BTreeSet::new();
        let p_all = corpus_program(&all);
        let p_none = corpus_program(&none);
        assert_eq!(p_all.instrs(), p_none.instrs(), "instructions must not depend on gating");
        assert_eq!(p_all.marks(), p_none.marks());
        assert_ne!(p_all.globals(), p_none.globals());
    }

    #[test]
    fn manifest_resolves_against_the_program() {
        let all: BTreeSet<&str> = INSTANCES.iter().map(|i| i.id).collect();
        let program = corpus_program(&all);
        let manifest = corpus_manifest();
        let truth = crate::truth::TruthTable::resolve(&program, &manifest);
        assert!(truth.len() >= 60, "corpus plants ~68 unique races, got {}", truth.len());
    }

    #[test]
    fn executions_reference_known_instances() {
        let known: BTreeSet<&str> = INSTANCES.iter().map(|i| i.id).collect();
        let execs = corpus_executions();
        assert_eq!(execs.len(), 20, "the paper's 18 executions plus the two impact feeds");
        let mut used = BTreeSet::new();
        for e in &execs {
            for id in &e.enabled {
                assert!(known.contains(id), "{} references unknown instance {id}", e.name);
                used.insert(*id);
            }
        }
        assert_eq!(used, known, "every instance must be exercised by some execution");
    }
}
