//! Ground-truth types: what each race in the corpus *really* is.
//!
//! The paper's authors manually triaged all 68 races found in Windows
//! Vista / Internet Explorer (§5.1). Our corpus is synthetic, so the
//! workload author records the verdict at construction time: every pattern
//! instance returns a manifest of the races it plants, keyed by instruction
//! *marks*. Evaluation joins the pipeline's findings against these
//! manifests to compute Table 1 / Table 2.

use std::fmt;

use replay_race::detect::StaticRaceId;
use tvm::program::Program;

/// The paper's benign-race taxonomy (Table 2).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BenignCategory {
    /// §5.4(1): hand-rolled synchronization built from plain loads/stores.
    UserConstructedSync,
    /// §5.4(2): double-checked initialization.
    DoubleCheck,
    /// §5.4(3): either the old or the new value is acceptable.
    BothValuesValid,
    /// §5.4(4): the write stores the value already present.
    RedundantWrite,
    /// §5.4(5): reader and writer use disjoint bits of one word.
    DisjointBitManipulation,
    /// §5.2.4: intentionally unsynchronized statistics/heuristics — these
    /// *do* change program state and are expected to be misclassified as
    /// potentially harmful.
    ApproximateComputation,
}

impl BenignCategory {
    /// All categories in Table 2 order.
    pub const ALL: [BenignCategory; 6] = [
        BenignCategory::UserConstructedSync,
        BenignCategory::DoubleCheck,
        BenignCategory::BothValuesValid,
        BenignCategory::RedundantWrite,
        BenignCategory::DisjointBitManipulation,
        BenignCategory::ApproximateComputation,
    ];

    /// The label used in Table 2.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BenignCategory::UserConstructedSync => "User Constructed Synchronization",
            BenignCategory::DoubleCheck => "Double Checks",
            BenignCategory::BothValuesValid => "Both Values Valid",
            BenignCategory::RedundantWrite => "Redundant Writes",
            BenignCategory::DisjointBitManipulation => "Disjoint bit manipulation",
            BenignCategory::ApproximateComputation => "Approximate Computation",
        }
    }
}

impl fmt::Display for BenignCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a harmful race is harmful.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HarmfulKind {
    /// The paper's Figure 2: racy reference-count decrement with a
    /// conditional free (double free / leak).
    RefCountFree,
    /// A read of correctness-critical state can observe a stale value.
    RacyPublication,
    /// A pointer read can observe a stale/dangling pointer.
    DanglingPointer,
}

/// Manual-triage verdict of one race.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrueVerdict {
    Benign(BenignCategory),
    Harmful(HarmfulKind),
}

impl TrueVerdict {
    /// Whether the race is really harmful.
    #[must_use]
    pub fn is_harmful(self) -> bool {
        matches!(self, TrueVerdict::Harmful(_))
    }
}

/// One planted race, identified by the marks of its two instructions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroundTruthRace {
    /// Mark of one racing instruction.
    pub mark_a: String,
    /// Mark of the other racing instruction.
    pub mark_b: String,
    pub verdict: TrueVerdict,
}

impl GroundTruthRace {
    /// Creates a manifest entry.
    #[must_use]
    pub fn new(mark_a: impl Into<String>, mark_b: impl Into<String>, verdict: TrueVerdict) -> Self {
        GroundTruthRace { mark_a: mark_a.into(), mark_b: mark_b.into(), verdict }
    }

    /// Resolves the marks to the static race identity within `program`.
    ///
    /// # Panics
    ///
    /// Panics when a mark is missing — a bug in the workload definition.
    #[must_use]
    pub fn static_id(&self, program: &Program) -> StaticRaceId {
        let pc_a = program
            .mark(&self.mark_a)
            .unwrap_or_else(|| panic!("mark {:?} not in program", self.mark_a));
        let pc_b = program
            .mark(&self.mark_b)
            .unwrap_or_else(|| panic!("mark {:?} not in program", self.mark_b));
        StaticRaceId::new(pc_a, pc_b)
    }
}

/// A resolved truth table for one program: static race id → verdict.
#[derive(Clone, Debug, Default)]
pub struct TruthTable {
    entries: std::collections::BTreeMap<StaticRaceId, TrueVerdict>,
}

impl TruthTable {
    /// Resolves a manifest against a program.
    ///
    /// # Panics
    ///
    /// Panics on unknown marks or if two manifest entries resolve to the
    /// same static race with different verdicts.
    #[must_use]
    pub fn resolve(program: &Program, manifest: &[GroundTruthRace]) -> Self {
        let mut entries = std::collections::BTreeMap::new();
        for race in manifest {
            let id = race.static_id(program);
            let prev = entries.insert(id, race.verdict);
            assert!(
                prev.is_none_or(|p| p == race.verdict),
                "conflicting verdicts for {id}: {prev:?} vs {:?}",
                race.verdict
            );
        }
        TruthTable { entries }
    }

    /// The verdict for a race, when the manifest covers it.
    #[must_use]
    pub fn verdict(&self, id: StaticRaceId) -> Option<TrueVerdict> {
        self.entries.get(&id).copied()
    }

    /// Number of distinct planted races.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(id, verdict)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (StaticRaceId, TrueVerdict)> + '_ {
        self.entries.iter().map(|(&id, &v)| (id, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::isa::Reg;
    use tvm::ProgramBuilder;

    #[test]
    fn resolve_marks_to_static_ids() {
        let mut b = ProgramBuilder::new();
        b.thread("t");
        b.mark("first").movi(Reg::R0, 1).mark("second").movi(Reg::R1, 2).halt();
        let p = b.build();
        let manifest = vec![GroundTruthRace::new(
            "second",
            "first",
            TrueVerdict::Benign(BenignCategory::RedundantWrite),
        )];
        let truth = TruthTable::resolve(&p, &manifest);
        assert_eq!(truth.len(), 1);
        let id = StaticRaceId::new(0, 1);
        assert_eq!(truth.verdict(id), Some(TrueVerdict::Benign(BenignCategory::RedundantWrite)));
        assert_eq!(truth.verdict(StaticRaceId::new(0, 5)), None);
    }

    #[test]
    #[should_panic(expected = "not in program")]
    fn unknown_mark_panics() {
        let mut b = ProgramBuilder::new();
        b.thread("t");
        b.halt();
        let p = b.build();
        let manifest = vec![GroundTruthRace::new(
            "nope",
            "nope2",
            TrueVerdict::Harmful(HarmfulKind::RefCountFree),
        )];
        let _ = TruthTable::resolve(&p, &manifest);
    }

    #[test]
    fn category_labels_are_table2_strings() {
        assert_eq!(BenignCategory::DoubleCheck.label(), "Double Checks");
        assert_eq!(BenignCategory::ALL.len(), 6);
        assert!(TrueVerdict::Harmful(HarmfulKind::RefCountFree).is_harmful());
        assert!(!TrueVerdict::Benign(BenignCategory::DoubleCheck).is_harmful());
    }
}
