//! Corpus evaluation: regenerates the paper's Table 1, Table 2, and
//! Figures 3–5 by running the full pipeline over the 20 executions and
//! joining the merged classification with the ground-truth manifests.
//!
//! [`run_static_eval`] is the E-SC2 companion: it runs the *static*
//! race analyzer (`racecheck`) over the corpus program, feeds its
//! warnings through the replay classifier on every execution, and
//! reports precision/recall of the static warnings alone against
//! static + replay-classification.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use idna_replay::recorder::record;
use idna_replay::replayer::replay;
use idna_replay::vproc::VprocConfig;
use replay_race::classify::{
    merge_classifications, predictions_by_id, ClassificationResult, ClassifierConfig, OutcomeGroup,
    StaticPrediction, TrustStatic, Verdict,
};
use replay_race::detect::{DetectorConfig, StaticRaceId};
use replay_race::pipeline::{run_pipeline, PipelineConfig, PipelineResult};
use replay_race::static_feed::{classify_static_warnings, StaticConfusion};
use replay_race::InstanceOutcome;

use crate::corpus::{corpus_executions, corpus_manifest, corpus_program};
use crate::truth::{BenignCategory, TrueVerdict, TruthTable};

/// Per-execution summary kept for reporting.
#[derive(Debug)]
pub struct ExecutionOutcome {
    pub name: &'static str,
    pub instructions: u64,
    pub unique_races: usize,
    pub race_instances: usize,
    pub raw_log_bytes: usize,
    pub compressed_log_bytes: usize,
}

/// Everything the corpus run produces.
#[derive(Debug)]
pub struct CorpusReport {
    /// Classification merged across all executions (paper §4.3: instance
    /// evidence accumulates across test scenarios).
    pub merged: ClassificationResult,
    /// Ground truth resolved against the corpus program.
    pub truth: TruthTable,
    pub executions: Vec<ExecutionOutcome>,
    /// Races detected that the manifests do not cover (should be empty).
    pub unexpected: Vec<StaticRaceId>,
    /// Total instructions across all executions.
    pub total_instructions: u64,
}

impl CorpusReport {
    /// Races detected across the corpus.
    #[must_use]
    pub fn detected_races(&self) -> usize {
        self.merged.races.len()
    }

    /// Planted races that no execution detected (dynamic coverage gaps).
    #[must_use]
    pub fn missing_races(&self) -> Vec<(StaticRaceId, TrueVerdict)> {
        self.truth.iter().filter(|(id, _)| !self.merged.races.contains_key(id)).collect()
    }

    /// Total dynamic race instances detected.
    #[must_use]
    pub fn total_instances(&self) -> usize {
        self.merged.races.values().map(|r| r.counts.detected).sum()
    }
}

/// Runs the full corpus (20 executions), classifies, merges, and joins with
/// ground truth.
///
/// # Panics
///
/// Panics if a freshly recorded log fails to replay (a pipeline bug).
#[must_use]
pub fn run_corpus() -> CorpusReport {
    run_corpus_with(&ClassifierConfig::default())
}

/// [`run_corpus`] with explicit classifier options — the hook for the
/// parallelism/cache ablations, which must hold the corpus fixed while
/// varying only the engine knobs.
///
/// # Panics
///
/// Panics if a freshly recorded log fails to replay (a pipeline bug).
#[must_use]
pub fn run_corpus_with(classifier: &ClassifierConfig) -> CorpusReport {
    run_corpus_with_predictions(classifier, None)
}

/// [`run_corpus_with`], threading an optional static-prediction map into
/// every execution's classifier — the E-SC3 trust ablation entry point.
///
/// # Panics
///
/// Panics if a freshly recorded log fails to replay (a pipeline bug).
#[must_use]
pub fn run_corpus_with_predictions(
    classifier: &ClassifierConfig,
    predictions: Option<Arc<BTreeMap<StaticRaceId, StaticPrediction>>>,
) -> CorpusReport {
    let executions = corpus_executions();
    let mut results = Vec::new();
    let mut outcomes = Vec::new();
    let mut total_instructions = 0;
    let mut program_for_truth = None;
    for exec in &executions {
        let enabled: BTreeSet<&str> = exec.enabled.iter().copied().collect();
        let program = corpus_program(&enabled);
        let config = PipelineConfig {
            run: exec.schedule,
            detector: DetectorConfig::default(),
            classifier: *classifier,
            static_predictions: predictions.clone(),
            measure_native: false,
        };
        let PipelineResult { detected, classification, log_size, instructions, .. } =
            run_pipeline(&program, &config).expect("corpus recording must replay");
        total_instructions += instructions;
        outcomes.push(ExecutionOutcome {
            name: exec.name,
            instructions,
            unique_races: detected.unique_races(),
            race_instances: detected.instance_count(),
            raw_log_bytes: log_size.raw_bytes,
            compressed_log_bytes: log_size.compressed_bytes,
        });
        results.push(classification);
        program_for_truth.get_or_insert(program);
    }
    let merged = merge_classifications(&results);
    let truth = TruthTable::resolve(
        program_for_truth.as_ref().expect("at least one execution"),
        &corpus_manifest(),
    );
    let unexpected =
        merged.races.keys().filter(|id| truth.verdict(**id).is_none()).copied().collect();
    CorpusReport { merged, truth, executions: outcomes, unexpected, total_instructions }
}

/// Table 1: outcome groups × (tool verdict, manual verdict).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Table1 {
    /// `[group][real]`: group 0=NoStateChange, 1=StateChange,
    /// 2=ReplayFailure; real 0=benign, 1=harmful.
    pub cells: [[usize; 2]; 3],
}

impl Table1 {
    /// Computes Table 1 from a corpus run.
    #[must_use]
    pub fn compute(report: &CorpusReport) -> Self {
        let mut cells = [[0usize; 2]; 3];
        for race in report.merged.races.values() {
            let Some(verdict) = report.truth.verdict(race.id) else { continue };
            let g = match race.group {
                OutcomeGroup::NoStateChange => 0,
                OutcomeGroup::StateChange => 1,
                OutcomeGroup::ReplayFailure => 2,
            };
            let r = usize::from(verdict.is_harmful());
            cells[g][r] += 1;
        }
        Table1 { cells }
    }

    /// Total races in the table.
    #[must_use]
    pub fn total(&self) -> usize {
        self.cells.iter().flatten().sum()
    }

    /// Races the tool classifies potentially benign (the No-State-Change
    /// row).
    #[must_use]
    pub fn potentially_benign(&self) -> usize {
        self.cells[0][0] + self.cells[0][1]
    }

    /// Races the tool classifies potentially harmful.
    #[must_use]
    pub fn potentially_harmful(&self) -> usize {
        self.total() - self.potentially_benign()
    }

    /// Harmful races misclassified as potentially benign — the paper
    /// reports **zero** and so must we for the corpus.
    #[must_use]
    pub fn missed_harmful(&self) -> usize {
        self.cells[0][1]
    }

    /// Really-benign races classified potentially harmful (triage waste).
    #[must_use]
    pub fn benign_flagged_harmful(&self) -> usize {
        self.cells[1][0] + self.cells[2][0]
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 1: Data Race Classification")?;
        writeln!(
            f,
            "{:<16} {:>18} {:>18} {:>7}",
            "", "Potentially Benign", "Potentially Harmful", "Total"
        )?;
        writeln!(
            f,
            "{:<16} {:>9} {:>8} {:>9} {:>8} {:>7}",
            "", "RealBen", "RealHarm", "RealBen", "RealHarm", ""
        )?;
        let rows = [("No State Change", 0), ("State Change", 1), ("Replay Failure", 2)];
        for (label, g) in rows {
            let (ben, harm) = (self.cells[g][0], self.cells[g][1]);
            if g == 0 {
                writeln!(
                    f,
                    "{label:<16} {ben:>9} {harm:>8} {:>9} {:>8} {:>7}",
                    "-",
                    "-",
                    ben + harm
                )?;
            } else {
                writeln!(
                    f,
                    "{label:<16} {:>9} {:>8} {ben:>9} {harm:>8} {:>7}",
                    "-",
                    "-",
                    ben + harm
                )?;
            }
        }
        let pb = self.potentially_benign();
        let ph = self.potentially_harmful();
        let benign_ph = self.benign_flagged_harmful();
        let harm_ph = ph - benign_ph;
        writeln!(
            f,
            "{:<16} {:>9} {:>8} {:>9} {:>8} {:>7}",
            "Total",
            self.cells[0][0],
            self.cells[0][1],
            benign_ph,
            harm_ph,
            self.total()
        )?;
        writeln!(f, "(tool: {pb} potentially benign, {ph} potentially harmful)")
    }
}

/// Table 2: real-benign races by category.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table2 {
    pub counts: std::collections::BTreeMap<BenignCategory, usize>,
}

impl Table2 {
    /// Computes Table 2 over the detected, really-benign races.
    #[must_use]
    pub fn compute(report: &CorpusReport) -> Self {
        let mut counts = std::collections::BTreeMap::new();
        for race in report.merged.races.values() {
            if let Some(TrueVerdict::Benign(cat)) = report.truth.verdict(race.id) {
                *counts.entry(cat).or_insert(0) += 1;
            }
        }
        Table2 { counts }
    }

    /// Total benign races.
    #[must_use]
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 2: Benign Data Races")?;
        for cat in BenignCategory::ALL {
            writeln!(f, "{:<36} {:>4}", cat.label(), self.counts.get(&cat).copied().unwrap_or(0))?;
        }
        writeln!(f, "{:<36} {:>4}", "Total", self.total())
    }
}

/// One bar of Figures 3–5: a race with its instance statistics.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FigureBar {
    pub race: StaticRaceId,
    /// Instances analyzed across all executions.
    pub instances: usize,
    /// Instances that exposed the race (state change or replay failure).
    pub exposing: usize,
}

/// A figure: per-race instance statistics for one subset of races.
#[derive(Clone, Debug)]
pub struct Figure {
    pub title: &'static str,
    pub bars: Vec<FigureBar>,
}

impl Figure {
    /// Figure 3: races classified potentially benign (all instances are
    /// No-State-Change).
    #[must_use]
    pub fn figure3(report: &CorpusReport) -> Self {
        Self::collect(report, "Figure 3: instances of potentially-benign races", |v, verdict| {
            v == Verdict::PotentiallyBenign && !verdict.is_harmful()
        })
    }

    /// Figure 4: potentially harmful and really harmful.
    #[must_use]
    pub fn figure4(report: &CorpusReport) -> Self {
        Self::collect(report, "Figure 4: instances of real-harmful races", |v, verdict| {
            v == Verdict::PotentiallyHarmful && verdict.is_harmful()
        })
    }

    /// Figure 5: potentially harmful but really benign (the
    /// misclassifications).
    #[must_use]
    pub fn figure5(report: &CorpusReport) -> Self {
        Self::collect(report, "Figure 5: instances of misclassified benign races", |v, verdict| {
            v == Verdict::PotentiallyHarmful && !verdict.is_harmful()
        })
    }

    fn collect(
        report: &CorpusReport,
        title: &'static str,
        keep: impl Fn(Verdict, TrueVerdict) -> bool,
    ) -> Self {
        let mut bars: Vec<FigureBar> = report
            .merged
            .races
            .values()
            .filter_map(|race| {
                let verdict = report.truth.verdict(race.id)?;
                keep(race.verdict, verdict).then_some(FigureBar {
                    race: race.id,
                    instances: race.counts.analyzed,
                    exposing: race.counts.exposing(),
                })
            })
            .collect();
        bars.sort_by(|a, b| b.instances.cmp(&a.instances).then(a.race.cmp(&b.race)));
        Figure { title, bars }
    }
}

impl fmt::Display for Figure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        for bar in &self.bars {
            writeln!(
                f,
                "  {:<16} instances={:<6} exposing={:<6} {}",
                bar.race.to_string(),
                bar.instances,
                bar.exposing,
                "#".repeat(bar.instances.min(60))
            )?;
        }
        if self.bars.is_empty() {
            writeln!(f, "  (none)")?;
        }
        Ok(())
    }
}

/// Flagged/total counters over the planted races, for one triage policy.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PrecisionRecall {
    /// Really-harmful planted races the policy flags.
    pub flagged_harmful: usize,
    /// Really-benign planted races the policy flags (triage waste).
    pub flagged_benign: usize,
    /// Really-harmful planted races in total.
    pub harmful_total: usize,
    /// Really-benign planted races in total.
    pub benign_total: usize,
}

impl PrecisionRecall {
    /// Planted races the policy flags.
    #[must_use]
    pub fn flagged(&self) -> usize {
        self.flagged_harmful + self.flagged_benign
    }

    /// Fraction of flagged races that are really harmful (1.0 when
    /// nothing is flagged).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn precision(&self) -> f64 {
        if self.flagged() == 0 {
            1.0
        } else {
            self.flagged_harmful as f64 / self.flagged() as f64
        }
    }

    /// Fraction of really-harmful races the policy flags (1.0 when there
    /// are none to find).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn recall(&self) -> f64 {
        if self.harmful_total == 0 {
            1.0
        } else {
            self.flagged_harmful as f64 / self.harmful_total as f64
        }
    }
}

/// E-SC2: the static analyzer's warnings joined with ground truth, alone
/// and after replay classification.
#[derive(Clone, Debug)]
pub struct StaticEval {
    /// Counters from the full-program (every instance enabled) analysis.
    pub stats: racecheck::AnalysisStats,
    /// Distinct static candidate pairs across the per-execution analyses.
    pub candidates: usize,
    /// Distinct pairs the order pass pruned in some execution.
    pub order_pruned: usize,
    /// Candidate pairs summed over the 20 per-execution analyses — the
    /// work the detector pre-filter actually monitors.
    pub aggregate_pairs: usize,
    /// The same sum with the statically-ordered rule disabled (the PR 2
    /// baseline the order pass is measured against).
    pub aggregate_pairs_no_order: usize,
    /// Monitored pcs summed over the per-execution analyses.
    pub aggregate_monitored: usize,
    /// Monitored pcs without the statically-ordered rule.
    pub aggregate_monitored_no_order: usize,
    /// Candidate pairs that are planted races (covered by ground truth).
    pub covered: usize,
    /// Candidate pairs with no ground-truth entry (conservative
    /// over-approximation outside the planted set).
    pub outside_truth: usize,
    /// Outside-truth pairs still flagged after replay classification.
    pub outside_truth_flagged: usize,
    /// Planted races in total.
    pub truth_races: usize,
    /// Flagging everything the static analysis reports.
    pub static_alone: PrecisionRecall,
    /// Static warnings filtered through the replay classifier: a warning
    /// survives if some execution's classifier flags it, or if no
    /// execution ever materializes it (nothing refuted the claim).
    pub combined: PrecisionRecall,
    /// Covered warnings no execution materialized (they stay flagged).
    pub covered_unmaterialized: usize,
    /// Covered warnings the classifier filtered (no state change in every
    /// materializing execution).
    pub covered_filtered: usize,
    /// E-SC3: idiom-pass predictions vs replay verdicts over materialized
    /// warnings (any confidence).
    pub confusion: StaticConfusion,
    /// E-SC3: the same matrix restricted to high-confidence benign
    /// predictions plus all predicted-harmful warnings — the population
    /// [`TrustStatic::SkipAgreedBenign`] acts on. Its `static_optimistic`
    /// cell must stay zero for the mode to graduate from ablation status.
    pub confusion_high: StaticConfusion,
    /// Warnings the idiom pass predicts benign (at any confidence).
    pub predicted_benign: usize,
    /// Warnings predicted benign at high confidence.
    pub predicted_benign_high: usize,
    /// Detected replay-benign races whose warning matched *no* idiom —
    /// recall gaps of the recognizers (E-SC3 reports these).
    pub replay_benign_unpredicted: usize,
    /// E-SC4: warnings the value-impact pass proves can never reach
    /// observable state.
    pub impact_unreachable_warnings: usize,
    /// E-SC4: impact-unreachable warnings some execution materialized —
    /// each one is a direct replay check of the unreachability proof.
    pub impact_unreachable_materialized: usize,
    /// E-SC4 soundness: materialized impact-unreachable warnings the
    /// replay classifier *flagged* (anything but No-State-Change). A
    /// non-zero count means the taint pass's proof is wrong — the
    /// `skip-unreachable` trust tier must never graduate while this is
    /// non-zero.
    pub impact_unreachable_flagged: usize,
}

/// Runs the static analyzer over each execution's program (the corpus
/// instruction stream is identical across enable sets; only the gate
/// globals differ, and the analysis folds them, so disabled instances'
/// code is provably dead per execution), feeds each execution's candidate
/// pairs through the replay classifier, and joins the union of the
/// per-execution candidate sets with ground truth.
///
/// # Panics
///
/// Panics if a freshly recorded log fails to replay (a pipeline bug).
#[must_use]
pub fn run_static_eval() -> StaticEval {
    let executions = corpus_executions();
    let full: BTreeSet<&str> = executions.iter().flat_map(|e| e.enabled.iter().copied()).collect();
    let analysis = racecheck::analyze(&corpus_program(&full));
    let truth = TruthTable::resolve(&corpus_program(&full), &corpus_manifest());

    // Evidence accumulated across executions, keyed by static id.
    let mut materialized: BTreeSet<StaticRaceId> = BTreeSet::new();
    let mut flagged: BTreeSet<StaticRaceId> = BTreeSet::new();
    let mut union: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut order_pruned: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut aggregate_pairs = 0;
    let mut aggregate_pairs_no_order = 0;
    let mut aggregate_monitored = 0;
    let mut aggregate_monitored_no_order = 0;
    for exec in &executions {
        let enabled: BTreeSet<&str> = exec.enabled.iter().copied().collect();
        let program = corpus_program(&enabled);
        let exec_analysis = racecheck::analyze(&program);
        let no_order = racecheck::analyze_without_order(&program);
        union.extend(exec_analysis.candidates.iter());
        aggregate_pairs += exec_analysis.stats.candidate_pairs;
        aggregate_pairs_no_order += no_order.stats.candidate_pairs;
        aggregate_monitored += exec_analysis.stats.monitored_pcs;
        aggregate_monitored_no_order += no_order.stats.monitored_pcs;
        order_pruned.extend(
            exec_analysis
                .pruned
                .iter()
                .filter(|(_, r)| **r == racecheck::PruneReason::StaticallyOrdered)
                .map(|(&k, _)| k),
        );
        let rec = record(&program, &exec.schedule);
        let trace = replay(&program, &rec.log).expect("corpus recording must replay");
        let summary =
            classify_static_warnings(&trace, &exec_analysis.candidates, VprocConfig::default());
        for result in &summary.results {
            materialized.insert(result.id);
            if result.outcome != InstanceOutcome::NoStateChange {
                flagged.insert(result.id);
            }
        }
    }
    let survives = |id: &StaticRaceId| flagged.contains(id) || !materialized.contains(id);

    // E-SC3: fold every materialized warning into the predicted-vs-replayed
    // confusion matrices. A warning missing from the prediction map (never
    // the case for candidate pairs, but stay total) counts as predicted
    // harmful.
    let predictions = predictions_by_id(&analysis);
    let mut confusion = StaticConfusion::default();
    let mut confusion_high = StaticConfusion::default();
    for id in &materialized {
        let p = predictions.get(id).map_or(racecheck::PredictedVerdict::UNKNOWN, |p| p.predicted);
        let replay_benign = !flagged.contains(id);
        confusion.record(p.benign(), replay_benign);
        if !p.benign() || p.high_confidence_benign() {
            confusion_high.record(p.benign(), replay_benign);
        }
    }
    let predicted_benign = predictions.values().filter(|p| p.predicted.benign()).count();
    let predicted_benign_high =
        predictions.values().filter(|p| p.predicted.high_confidence_benign()).count();
    let replay_benign_unpredicted = materialized
        .iter()
        .filter(|id| {
            !flagged.contains(id) && !predictions.get(id).is_some_and(|p| p.predicted.benign())
        })
        .count();

    // E-SC4: cross-validate the value-impact pass against the replay
    // verdicts. An impact-unreachable warning that any execution flags is
    // a refuted proof — a soundness bug in the taint pass.
    let unreachable = |id: &StaticRaceId| {
        predictions.get(id).is_some_and(|p| p.reach == racecheck::Reach::Unreachable)
    };
    let impact_unreachable_warnings =
        predictions.values().filter(|p| p.reach == racecheck::Reach::Unreachable).count();
    let impact_unreachable_materialized = materialized.iter().filter(|id| unreachable(id)).count();
    let impact_unreachable_flagged =
        materialized.iter().filter(|id| unreachable(id) && flagged.contains(id)).count();

    let mut static_alone = PrecisionRecall::default();
    let mut combined = PrecisionRecall::default();
    let mut covered = 0;
    let mut covered_unmaterialized = 0;
    let mut covered_filtered = 0;
    for (id, verdict) in truth.iter() {
        let harmful = verdict.is_harmful();
        if harmful {
            static_alone.harmful_total += 1;
            combined.harmful_total += 1;
        } else {
            static_alone.benign_total += 1;
            combined.benign_total += 1;
        }
        if !union.contains(&(id.pc_lo, id.pc_hi)) {
            continue;
        }
        covered += 1;
        if harmful {
            static_alone.flagged_harmful += 1;
        } else {
            static_alone.flagged_benign += 1;
        }
        if !materialized.contains(&id) {
            covered_unmaterialized += 1;
        } else if !flagged.contains(&id) {
            covered_filtered += 1;
        }
        if survives(&id) {
            if harmful {
                combined.flagged_harmful += 1;
            } else {
                combined.flagged_benign += 1;
            }
        }
    }

    let mut outside_truth = 0;
    let mut outside_truth_flagged = 0;
    for &(pc_a, pc_b) in &union {
        let id = StaticRaceId::new(pc_a, pc_b);
        if truth.verdict(id).is_some() {
            continue;
        }
        outside_truth += 1;
        if survives(&id) {
            outside_truth_flagged += 1;
        }
    }

    StaticEval {
        candidates: union.len(),
        order_pruned: order_pruned.len(),
        aggregate_pairs,
        aggregate_pairs_no_order,
        aggregate_monitored,
        aggregate_monitored_no_order,
        stats: analysis.stats,
        covered,
        outside_truth,
        outside_truth_flagged,
        truth_races: truth.len(),
        static_alone,
        combined,
        covered_unmaterialized,
        covered_filtered,
        confusion,
        confusion_high,
        predicted_benign,
        predicted_benign_high,
        replay_benign_unpredicted,
        impact_unreachable_warnings,
        impact_unreachable_materialized,
        impact_unreachable_flagged,
    }
}

/// E-SC3/E-SC4 trust ablation: the corpus classified with every replay
/// run versus each trust tier — [`TrustStatic::SkipAgreedBenign`] (skip
/// races the idiom pass predicts benign at high confidence),
/// [`TrustStatic::SkipUnreachable`] (skip races the value-impact pass
/// proves can't reach observable state), and both combined.
#[derive(Debug)]
pub struct TrustAblation {
    /// Corpus run with trust off (replay everything).
    pub baseline: CorpusReport,
    /// Corpus run trusting high-confidence benign predictions.
    pub trusted: CorpusReport,
    /// Corpus run trusting impact-unreachability proofs.
    pub unreachable: CorpusReport,
    /// Corpus run trusting both (the deepest skip tier).
    pub combined: CorpusReport,
    /// Race ids whose merged verdict differs between the baseline and
    /// *any* trusted run. Must be empty for the modes to graduate from
    /// ablation status.
    pub verdict_flips: Vec<StaticRaceId>,
}

impl TrustAblation {
    /// Virtual-processor replays saved by trusting the idiom pass.
    #[must_use]
    pub fn replays_saved(&self) -> u64 {
        self.baseline.merged.vproc_replays.saturating_sub(self.trusted.merged.vproc_replays)
    }

    /// Virtual-processor replays saved by trusting the impact pass alone.
    #[must_use]
    pub fn replays_saved_unreachable(&self) -> u64 {
        self.baseline.merged.vproc_replays.saturating_sub(self.unreachable.merged.vproc_replays)
    }

    /// Virtual-processor replays saved by trusting both passes.
    #[must_use]
    pub fn replays_saved_combined(&self) -> u64 {
        self.baseline.merged.vproc_replays.saturating_sub(self.combined.merged.vproc_replays)
    }

    /// Race skips across all executions under skip-benign (one race can
    /// be skipped in several executions).
    #[must_use]
    pub fn skipped_races(&self) -> u64 {
        self.trusted.merged.static_skipped_races
    }
}

/// Runs the trust ablation: one corpus pass with the default classifier,
/// then one per trust tier ([`TrustStatic::SkipAgreedBenign`],
/// [`TrustStatic::SkipUnreachable`], [`TrustStatic::SkipBoth`]), all fed
/// by a single static analysis of the corpus program.
///
/// # Panics
///
/// Panics if a freshly recorded log fails to replay (a pipeline bug).
#[must_use]
pub fn run_trust_ablation() -> TrustAblation {
    let executions = corpus_executions();
    let full: BTreeSet<&str> = executions.iter().flat_map(|e| e.enabled.iter().copied()).collect();
    let predictions = Arc::new(predictions_by_id(&racecheck::analyze(&corpus_program(&full))));
    let baseline = run_corpus_with(&ClassifierConfig::default());
    let run_tier = |trust: TrustStatic| {
        let config = ClassifierConfig { trust_static: trust, ..ClassifierConfig::default() };
        run_corpus_with_predictions(&config, Some(Arc::clone(&predictions)))
    };
    let trusted = run_tier(TrustStatic::SkipAgreedBenign);
    let unreachable = run_tier(TrustStatic::SkipUnreachable);
    let combined = run_tier(TrustStatic::SkipBoth);
    let mut verdict_flips: BTreeSet<StaticRaceId> = BTreeSet::new();
    for report in [&trusted, &unreachable, &combined] {
        verdict_flips.extend(baseline.merged.races.iter().filter_map(|(id, race)| {
            report.merged.races.get(id).is_none_or(|t| t.verdict != race.verdict).then_some(*id)
        }));
    }
    let verdict_flips = verdict_flips.into_iter().collect();
    TrustAblation { baseline, trusted, unreachable, combined, verdict_flips }
}

impl fmt::Display for TrustAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E-SC3/E-SC4 ablation: trust-static tiers vs off")?;
        for (label, report) in [
            ("off", &self.baseline),
            ("skip-benign", &self.trusted),
            ("skip-unreachable", &self.unreachable),
            ("combined", &self.combined),
        ] {
            writeln!(
                f,
                "  {:<18} races={:<3} vproc replays={:<5} statically skipped={}",
                label,
                report.merged.races.len(),
                report.merged.vproc_replays,
                report.merged.static_skipped_races
            )?;
        }
        writeln!(
            f,
            "  replays saved: skip-benign {} | skip-unreachable {} | combined {}",
            self.replays_saved(),
            self.replays_saved_unreachable(),
            self.replays_saved_combined()
        )?;
        if self.verdict_flips.is_empty() {
            writeln!(f, "  verdict flips: none")
        } else {
            writeln!(f, "  verdict flips: {:?}", self.verdict_flips)
        }
    }
}

impl fmt::Display for StaticEval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E-SC2: static warnings vs static + replay classification")?;
        writeln!(
            f,
            "  static candidates: {} ({} on planted races, {} elsewhere)",
            self.candidates, self.covered, self.outside_truth
        )?;
        writeln!(
            f,
            "  order pruning (per-execution totals): pairs {} -> {}, \
             monitored pcs {} -> {} ({} distinct pairs proven ordered)",
            self.aggregate_pairs_no_order,
            self.aggregate_pairs,
            self.aggregate_monitored_no_order,
            self.aggregate_monitored,
            self.order_pruned
        )?;
        writeln!(
            f,
            "  planted races: {} ({} harmful, {} benign)",
            self.truth_races, self.static_alone.harmful_total, self.static_alone.benign_total
        )?;
        writeln!(
            f,
            "  {:<22} {:>8} {:>8} {:>8} {:>10} {:>7}",
            "", "flagged", "harmful", "benign", "precision", "recall"
        )?;
        for (label, pr) in
            [("static alone", self.static_alone), ("static + classifier", self.combined)]
        {
            writeln!(
                f,
                "  {:<22} {:>8} {:>8} {:>8} {:>10.2} {:>7.2}",
                label,
                pr.flagged(),
                pr.flagged_harmful,
                pr.flagged_benign,
                pr.precision(),
                pr.recall()
            )?;
        }
        writeln!(
            f,
            "  (classifier filtered {} of the covered warnings; {} never materialized \
             and stay flagged; {} of {} elsewhere-warnings still flagged)",
            self.covered_filtered,
            self.covered_unmaterialized,
            self.outside_truth_flagged,
            self.outside_truth
        )?;
        writeln!(f, "E-SC3: idiom predictions vs replay verdicts (materialized warnings)")?;
        writeln!(
            f,
            "  predicted benign: {} warnings ({} at high confidence)",
            self.predicted_benign, self.predicted_benign_high
        )?;
        for (label, c) in
            [("all predictions", self.confusion), ("trusted population", self.confusion_high)]
        {
            writeln!(
                f,
                "  {:<22} agree-benign={:<4} agree-harmful={:<4} optimistic={:<4} \
                 pessimistic={:<4} agreement={:.2}",
                label,
                c.agree_benign,
                c.agree_harmful,
                c.static_optimistic,
                c.static_pessimistic,
                c.agreement()
            )?;
        }
        writeln!(
            f,
            "  ({} replay-benign races matched no idiom — recognizer recall gaps)",
            self.replay_benign_unpredicted
        )?;
        writeln!(f, "E-SC4: value-impact proofs vs replay verdicts")?;
        writeln!(
            f,
            "  impact-unreachable warnings: {} ({} materialized, {} refuted by replay)",
            self.impact_unreachable_warnings,
            self.impact_unreachable_materialized,
            self.impact_unreachable_flagged
        )
    }
}
