//! # workloads — the evaluation corpus for `replay-race`
//!
//! The PLDI 2007 paper evaluates its classifier on 18 recorded executions
//! of Windows Vista and Internet Explorer services, containing 68 unique
//! data races whose benign/harmful ground truth the authors established by
//! manual triage (Tables 1–2, Figures 3–5).
//!
//! This crate regenerates that study synthetically:
//!
//! * [`patterns`] implements one emitter per entry in the paper's own race
//!   taxonomy — user-constructed synchronization, double checks,
//!   both-values-valid, redundant writes, disjoint bit manipulation,
//!   approximate computation, plus the harmful patterns (the Figure 2
//!   refcount bug, racy publication, dangling pointers);
//! * every pattern returns a [`truth`] manifest labelling the races it
//!   plants, playing the role of the paper's manual triage;
//! * [`corpus`] composes the patterns into one multi-service program and
//!   defines the 18 recorded executions (distinct service mixes and
//!   schedules over the same binary);
//! * [`eval`] runs the pipeline over the corpus and joins the results with
//!   the manifests to regenerate Table 1, Table 2, and Figures 3–5;
//! * [`browser`] is the Internet-Explorer stand-in used for the §5.1
//!   overhead and log-size study.

pub mod browser;
pub mod corpus;
pub mod eval;
pub mod patterns;
pub mod truth;

pub use corpus::{corpus_executions, corpus_manifest, corpus_program, Execution};
pub use eval::{run_corpus, run_static_eval, CorpusReport, Figure, StaticEval, Table1, Table2};
pub use truth::{BenignCategory, GroundTruthRace, HarmfulKind, TrueVerdict, TruthTable};
