//! Reproduces the paper's Figure 2: a racy reference-count decrement with a
//! conditional `free`, triaged by the replay classifier. The example records
//! the program under increasingly adversarial schedules until the racy
//! regions overlap, then prints the two-way replay scenario a developer
//! would use to understand the bug — including the interleaving where the
//! object is freed twice.
//!
//! ```sh
//! cargo run -p replay-race --example triage_refcount
//! ```

use std::sync::Arc;

use replay_race::classify::Verdict;
use replay_race::pipeline::{run_pipeline, PipelineConfig};
use tvm::isa::{Cond, Reg, RmwOp, SysCall};
use tvm::{Program, ProgramBuilder, RunConfig};

const READY: i64 = 0x8;
const RC: i64 = 0x10;
const FOO: i64 = 0x18;

/// Two worker threads execute, without synchronization:
///
/// ```c
/// foo->refCnt--;
/// if (foo->refCnt == 0)
///     free(foo);
/// ```
fn figure2_program() -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    b.thread("setup");
    b.movi(Reg::R0, 4)
        .syscall(SysCall::Alloc)
        .store(Reg::R0, Reg::R15, FOO)
        .movi(Reg::R1, 2)
        .store(Reg::R1, Reg::R15, RC)
        .movi(Reg::R2, 1)
        .atomic_rmw(RmwOp::Xchg, Reg::R3, Reg::R15, READY, Reg::R2)
        .halt();
    for name in ["w1", "w2"] {
        b.thread(name);
        let spin = b.fresh_label(&format!("{name}_spin"));
        let skip = b.fresh_label(&format!("{name}_skip"));
        b.label(spin)
            .movi(Reg::R2, 0)
            .atomic_rmw(RmwOp::Or, Reg::R1, Reg::R15, READY, Reg::R2)
            .branch(Cond::Eq, Reg::R1, Reg::R15, spin);
        b.mark(&format!("{name}_load_refcnt"))
            .load(Reg::R3, Reg::R15, RC)
            .subi(Reg::R3, Reg::R3, 1)
            .mark(&format!("{name}_store_refcnt"))
            .store(Reg::R3, Reg::R15, RC)
            .mark(&format!("{name}_recheck_refcnt"))
            .load(Reg::R4, Reg::R15, RC)
            .branch(Cond::Ne, Reg::R4, Reg::R15, skip)
            .load(Reg::R0, Reg::R15, FOO)
            .mark(&format!("{name}_free"))
            .syscall(SysCall::Free)
            .label(skip)
            .halt();
    }
    Arc::new(b.build())
}

fn main() {
    let program = figure2_program();
    for seed in 0..64u64 {
        let config = PipelineConfig::new(RunConfig::chunked(seed, 1, 6).with_max_steps(200_000));
        let result = run_pipeline(&program, &config).expect("replay");
        let harmful: Vec<_> =
            result.classification.with_verdict(Verdict::PotentiallyHarmful).collect();
        if harmful.is_empty() {
            continue;
        }
        println!("schedule seed {seed} exposed the bug\n");
        println!("{}", result.report.to_text());
        println!("triage summary:");
        for race in &harmful {
            println!(
                "  {}: {} instances, {} exposing ({}%)",
                race.id,
                race.counts.analyzed,
                race.counts.exposing(),
                race.counts.exposing() * 100 / race.counts.analyzed.max(1)
            );
        }
        return;
    }
    println!("no schedule in the sweep overlapped the racy regions; try more seeds");
}
