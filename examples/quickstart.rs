//! Quickstart: build a racy two-thread program, run the whole pipeline, and
//! print the developer report.
//!
//! ```sh
//! cargo run -p replay-race --example quickstart
//! ```

use replay_race::classify::Verdict;
use replay_race::pipeline::{run_pipeline, PipelineConfig};
use tvm::isa::Reg;
use tvm::{ProgramBuilder, RunConfig};

fn main() {
    // Shared globals (word addresses).
    const SAME: i64 = 0x20; // both threads store the same value: benign race
    const DIFF: i64 = 0x28; // threads store different values: harmful race

    let mut b = ProgramBuilder::new();
    b.thread("worker_a");
    b.movi(Reg::R1, 7)
        .mark("a_redundant_store")
        .store(Reg::R1, Reg::R15, SAME)
        .movi(Reg::R2, 1)
        .mark("a_conflicting_store")
        .store(Reg::R2, Reg::R15, DIFF)
        .halt();
    b.thread("worker_b");
    b.movi(Reg::R1, 7)
        .mark("b_redundant_store")
        .store(Reg::R1, Reg::R15, SAME)
        .movi(Reg::R2, 2)
        .mark("b_conflicting_store")
        .store(Reg::R2, Reg::R15, DIFF)
        .halt();

    let program = b.build().into();
    let config = PipelineConfig::new(RunConfig::round_robin(1));
    let result = run_pipeline(&program, &config).expect("fresh recordings always replay");

    println!("instructions executed : {}", result.instructions);
    println!("unique data races     : {}", result.detected.unique_races());
    println!("dynamic race instances: {}", result.detected.instance_count());
    println!(
        "potentially harmful   : {}",
        result.classification.with_verdict(Verdict::PotentiallyHarmful).count()
    );
    println!(
        "potentially benign    : {}",
        result.classification.with_verdict(Verdict::PotentiallyBenign).count()
    );
    println!(
        "log size              : {} bytes raw ({:.2} bits/instr), {} bytes compressed",
        result.log_size.raw_bytes,
        result.log_size.bits_per_instr_raw(),
        result.log_size.compressed_bytes
    );
    println!();
    println!("{}", result.report.to_text());
}
