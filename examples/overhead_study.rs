//! The paper's §5.1 overhead and log-size study, on the browser stand-in:
//! native execution vs recording vs replay vs happens-before analysis vs
//! dual-order classification, plus bits-per-instruction of the replay log.
//!
//! ```sh
//! cargo run --release -p workloads --example overhead_study
//! ```

use replay_race::pipeline::{run_pipeline, PipelineConfig};
use tvm::scheduler::RunConfig;
use workloads::browser::{browser_program, BrowserConfig};

fn main() {
    let cfg = BrowserConfig::paper_scale();
    println!("browser workload: {} threads, {} jobs (paper: 27 threads)", cfg.threads(), cfg.jobs);
    let program = browser_program(&cfg);
    let run = RunConfig::chunked(7, 1, 8).with_max_steps(50_000_000);
    let result = run_pipeline(&program, &PipelineConfig::new(run)).expect("pipeline");

    let t = &result.timings;
    println!("instructions executed : {}", result.instructions);
    println!(
        "dynamic race instances: {} ({} unique races; paper's IE run: 2,196 instances)",
        result.detected.instance_count(),
        result.detected.unique_races()
    );
    println!();
    println!("phase           time        overhead vs native   (paper)");
    println!("native          {:>9.3?}   1.0x", t.native);
    println!(
        "record          {:>9.3?}   {:>6.1}x              (~6x)",
        t.record,
        t.overhead(t.record)
    );
    println!(
        "replay          {:>9.3?}   {:>6.1}x              (~10x)",
        t.replay,
        t.overhead(t.replay)
    );
    println!(
        "hb detection    {:>9.3?}   {:>6.1}x              (~45x)",
        t.detect,
        t.overhead(t.detect)
    );
    println!(
        "classification  {:>9.3?}   {:>6.1}x              (~280x)",
        t.classify,
        t.overhead(t.classify)
    );
    println!();
    println!(
        "log size: {} bytes raw = {:.3} bits/instr (paper ~0.8); compressed {} bytes = {:.3} bits/instr (paper ~0.3)",
        result.log_size.raw_bytes,
        result.log_size.bits_per_instr_raw(),
        result.log_size.compressed_bytes,
        result.log_size.bits_per_instr_compressed()
    );
    println!(
        "projected: {:.1} MB per billion instructions (paper ~96 MB)",
        result.log_size.mb_per_billion_instrs()
    );
}
