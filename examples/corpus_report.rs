//! Runs the full 18-execution evaluation corpus and prints the paper's
//! Table 1, Table 2, and Figures 3–5 regenerated from scratch.
//!
//! ```sh
//! cargo run --release -p workloads --example corpus_report
//! ```

use workloads::eval::{run_corpus, Figure, Table1, Table2};

fn main() {
    let report = run_corpus();

    println!(
        "corpus: {} executions, {} instructions total",
        report.executions.len(),
        report.total_instructions
    );
    println!(
        "detected {} unique races across {} dynamic instances\n",
        report.detected_races(),
        report.total_instances()
    );
    for exec in &report.executions {
        println!(
            "  {:<22} instrs={:<8} races={:<3} instances={:<6} log={}B ({}B compressed)",
            exec.name,
            exec.instructions,
            exec.unique_races,
            exec.race_instances,
            exec.raw_log_bytes,
            exec.compressed_log_bytes
        );
    }
    println!();

    let t1 = Table1::compute(&report);
    println!("{t1}");
    println!(
        "missed harmful races (must be 0): {}\nbenign races flagged harmful (triage waste): {}\n",
        t1.missed_harmful(),
        t1.benign_flagged_harmful()
    );

    let t2 = Table2::compute(&report);
    println!("{t2}");

    println!("{}", Figure::figure3(&report));
    println!("{}", Figure::figure4(&report));
    println!("{}", Figure::figure5(&report));

    if !report.unexpected.is_empty() {
        println!("WARNING: races outside the ground-truth manifest: {:?}", report.unexpected);
    }
}
