//! Cross-validation of the static benign-idiom recognizers against the
//! replay classifier (the tentpole invariants of the idiom pass):
//!
//! 1. **Zero-flip**: no race the pass predicts benign at *high* confidence
//!    is ever classified potentially harmful by replay — over every corpus
//!    pattern under two schedules, and corpus-wide when
//!    `TrustStatic::SkipAgreedBenign` actually skips the replays.
//! 2. **Passivity**: computing predictions changes nothing downstream —
//!    detector output is byte-identical under the candidate pre-filter and
//!    classification is byte-identical when predictions are supplied but
//!    trust is off.

use std::collections::BTreeSet;
use std::sync::Arc;

use idna_replay::recorder::record;
use idna_replay::replayer::replay;
use replay_race::classify::{
    classify_races, classify_races_with, predictions_by_id, ClassifierConfig, OutcomeGroup,
};
use replay_race::detect::{detect_races, DetectorConfig};
use tvm::scheduler::RunConfig;
use workloads::corpus::{corpus_program, instance_ids};
use workloads::eval::run_trust_ablation;

fn schedules() -> Vec<RunConfig> {
    vec![
        RunConfig::round_robin(2).with_max_steps(400_000),
        RunConfig::chunked(9, 1, 6).with_max_steps(400_000),
    ]
}

#[test]
fn high_confidence_benign_predictions_are_never_replayed_harmful() {
    let mut trusted_races = 0usize;
    for id in instance_ids() {
        let enabled: BTreeSet<&str> = [id].into_iter().collect();
        let program = corpus_program(&enabled);
        let predictions = predictions_by_id(&racecheck::analyze(&program));
        for schedule in schedules() {
            let recording = record(&program, &schedule);
            let trace = replay(&program, &recording.log).expect("fresh recordings replay");
            let detected = detect_races(&trace, &DetectorConfig::default());
            let result = classify_races(&trace, &detected, &ClassifierConfig::default());
            for (race_id, race) in &result.races {
                if predictions.get(race_id).is_some_and(|p| p.predicted.high_confidence_benign()) {
                    assert_eq!(
                        race.group,
                        OutcomeGroup::NoStateChange,
                        "{id}: {race_id} predicted benign at high confidence but replay \
                         classified it {:?}",
                        race.group
                    );
                    trusted_races += 1;
                }
            }
        }
    }
    assert!(trusted_races > 0, "the corpus must exercise high-confidence predictions");
}

#[test]
fn trust_static_skip_never_flips_a_corpus_verdict() {
    let ablation = run_trust_ablation();
    assert!(
        ablation.verdict_flips.is_empty(),
        "skipping replays for high-confidence benign predictions flipped verdicts: {:?}",
        ablation.verdict_flips
    );
    assert_eq!(
        ablation.baseline.merged.races.keys().collect::<Vec<_>>(),
        ablation.trusted.merged.races.keys().collect::<Vec<_>>(),
        "trusting predictions must not add or drop races"
    );
    assert!(ablation.skipped_races() > 0, "the corpus must exercise the skip path");
    assert!(ablation.replays_saved() > 0, "skipping races must save vproc replays");
}

#[test]
fn idiom_tagging_and_prefilter_leave_detector_and_classifier_output_identical() {
    for id in instance_ids() {
        let enabled: BTreeSet<&str> = [id].into_iter().collect();
        let program = corpus_program(&enabled);
        let analysis = racecheck::analyze(&program);
        let predictions = predictions_by_id(&analysis);
        let candidates = Arc::new(analysis.candidates);
        for schedule in schedules() {
            let recording = record(&program, &schedule);
            let trace = replay(&program, &recording.log).expect("fresh recordings replay");

            let unfiltered = detect_races(&trace, &DetectorConfig::default());
            let filtered = detect_races(
                &trace,
                &DetectorConfig {
                    prefilter: Some(Arc::clone(&candidates)),
                    ..DetectorConfig::default()
                },
            );
            assert_eq!(
                filtered.instances, unfiltered.instances,
                "{id}: prefilter changed instances"
            );
            assert_eq!(
                filtered.by_static, unfiltered.by_static,
                "{id}: prefilter changed grouping"
            );

            // Predictions are advisory: with trust off they must not change
            // one bit of the classification.
            let config = ClassifierConfig::default();
            let without = classify_races(&trace, &unfiltered, &config);
            let with = classify_races_with(&trace, &unfiltered, &config, Some(&predictions));
            assert_eq!(without.races, with.races, "{id}: predictions changed verdicts");
            assert_eq!(without.vproc_replays, with.vproc_replays, "{id}: replay counts differ");
            assert_eq!(without.static_skipped_races, 0);
            assert_eq!(with.static_skipped_races, 0, "{id}: trust off must never skip");
        }
    }
}
