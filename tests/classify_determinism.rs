//! Determinism guarantees of the parallel, memoized classification engine:
//! for every workloads pattern, the classification is bit-for-bit identical
//! at any job count and with the exact replay cache on or off, and merging
//! split classifications equals classifying everything at once.

use std::collections::BTreeSet;

use idna_replay::recorder::record;
use idna_replay::replayer::{replay, ReplayTrace};
use replay_race::classify::{
    classify_races, merge_classifications, CacheMode, ClassificationResult, ClassifierConfig,
};
use replay_race::detect::{detect_races, DetectedRaces, DetectorConfig};
use tvm::scheduler::RunConfig;
use workloads::corpus::{corpus_program, instance_ids};

/// Records and replays one corpus pattern in isolation.
fn pattern_trace(id: &str, schedule: &RunConfig) -> (ReplayTrace, DetectedRaces) {
    let enabled: BTreeSet<&str> = [id].into_iter().collect();
    let program = corpus_program(&enabled);
    let recording = record(&program, schedule);
    let trace = replay(&program, &recording.log).expect("fresh recordings replay");
    let detected = detect_races(&trace, &DetectorConfig::default());
    (trace, detected)
}

fn classify_with(
    trace: &ReplayTrace,
    detected: &DetectedRaces,
    jobs: usize,
    cache: CacheMode,
) -> ClassificationResult {
    let config = ClassifierConfig { jobs, cache, ..ClassifierConfig::default() };
    classify_races(trace, detected, &config)
}

/// Full bit-for-bit equality of two classifications (races, instance
/// outcomes, replay and cache accounting).
fn assert_identical(a: &ClassificationResult, b: &ClassificationResult, what: &str) {
    assert_eq!(a.races, b.races, "{what}: classified races differ");
    assert_eq!(a.vproc_replays, b.vproc_replays, "{what}: replay counts differ");
    assert_eq!(a.cache_stats, b.cache_stats, "{what}: cache accounting differs");
}

/// The schedules the matrix runs under: one deterministic round-robin and
/// one chunked-random interleaving for scheduling diversity.
fn schedules() -> Vec<RunConfig> {
    vec![
        RunConfig::round_robin(2).with_max_steps(400_000),
        RunConfig::chunked(9, 1, 6).with_max_steps(400_000),
    ]
}

#[test]
fn every_pattern_classifies_identically_at_any_job_count() {
    for id in instance_ids() {
        for schedule in schedules() {
            let (trace, detected) = pattern_trace(id, &schedule);
            let sequential = classify_with(&trace, &detected, 1, CacheMode::Off);
            for jobs in [2, 0] {
                let parallel = classify_with(&trace, &detected, jobs, CacheMode::Off);
                assert_identical(&sequential, &parallel, &format!("{id} jobs={jobs}"));
            }
        }
    }
}

#[test]
fn exact_cache_never_changes_a_classification() {
    for id in instance_ids() {
        for schedule in schedules() {
            let (trace, detected) = pattern_trace(id, &schedule);
            let uncached = classify_with(&trace, &detected, 1, CacheMode::Off);
            for jobs in [1, 2, 0] {
                let cached = classify_with(&trace, &detected, jobs, CacheMode::Exact);
                assert_eq!(
                    uncached.races, cached.races,
                    "{id}: exact cache must not change the classification (jobs={jobs})"
                );
                // Exact keys are unique within one classification, so the
                // same replays run whether the cache is on or off.
                assert_eq!(uncached.vproc_replays, cached.vproc_replays, "{id}");
                assert!(cached.cache.is_some(), "{id}: exact mode keeps the cache handle");
            }
        }
    }
}

#[test]
fn coarse_cache_is_deterministic_and_accounts_for_every_replay() {
    // Coarse caching is an approximation (live-outs are reused across loop
    // iterations), so classifications may legitimately differ from the
    // uncached run. What must still hold: the same race set, deterministic
    // results at any job count, and replay accounting that balances.
    for id in instance_ids() {
        let schedule = RunConfig::chunked(9, 1, 6).with_max_steps(400_000);
        let (trace, detected) = pattern_trace(id, &schedule);
        let uncached = classify_with(&trace, &detected, 1, CacheMode::Off);
        let coarse = classify_with(&trace, &detected, 1, CacheMode::Coarse);
        assert_eq!(
            uncached.races.keys().collect::<Vec<_>>(),
            coarse.races.keys().collect::<Vec<_>>(),
            "{id}: coarse caching must not add or drop races"
        );
        let stats = coarse.cache_stats;
        assert_eq!(stats.hits, stats.saved_replays, "{id}");
        assert_eq!(coarse.vproc_replays, stats.misses, "{id}");
        let analyzed: usize = coarse.races.values().map(|r| r.counts.analyzed).sum();
        assert_eq!(
            stats.hits + stats.misses,
            2 * analyzed as u64,
            "{id}: every planned replay is a hit or a miss"
        );
        for jobs in [2, 0] {
            let parallel = classify_with(&trace, &detected, jobs, CacheMode::Coarse);
            assert_identical(&coarse, &parallel, &format!("{id} coarse jobs={jobs}"));
        }
    }
}

/// Splits detected races into two halves per static race, preserving the
/// per-race instance order (the first ⌈n/2⌉ instances, then the rest).
fn split_detected(detected: &DetectedRaces) -> (DetectedRaces, DetectedRaces) {
    let mut first =
        DetectedRaces { instances: detected.instances.clone(), ..DetectedRaces::default() };
    let mut second =
        DetectedRaces { instances: detected.instances.clone(), ..DetectedRaces::default() };
    for (id, indices) in &detected.by_static {
        let mid = indices.len().div_ceil(2);
        first.by_static.insert(*id, indices[..mid].to_vec());
        if indices.len() > mid {
            second.by_static.insert(*id, indices[mid..].to_vec());
        }
    }
    (first, second)
}

#[test]
fn merging_split_executions_equals_classifying_everything_at_once() {
    // §4.3 accounting reconciliation: classifying two halves of the
    // instance evidence and merging must equal classifying it all at once —
    // including the replay and cache-savings counters.
    for id in ["ax_s1", "us_h1", "hf_rc", "rw2"] {
        let schedule = RunConfig::chunked(9, 1, 6).with_max_steps(400_000);
        let (trace, detected) = pattern_trace(id, &schedule);
        for cache in [CacheMode::Off, CacheMode::Exact] {
            let whole = classify_with(&trace, &detected, 2, cache);
            let (first, second) = split_detected(&detected);
            let merged = merge_classifications(&[
                classify_with(&trace, &first, 2, cache),
                classify_with(&trace, &second, 2, cache),
            ]);
            assert_eq!(whole.races, merged.races, "{id} ({cache:?})");
            assert_eq!(whole.vproc_replays, merged.vproc_replays, "{id} ({cache:?})");
            assert_eq!(whole.cache_stats, merged.cache_stats, "{id} ({cache:?})");
            assert!(merged.cache.is_none(), "merged results drop the per-trace cache");
        }
    }
}
