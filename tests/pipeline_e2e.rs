//! Cross-crate end-to-end tests: record → replay → detect → classify →
//! report on real workloads, plus the permissive-replay ablation and the
//! time-travel facility over pipeline traces.

use std::collections::BTreeSet;

use idna_replay::timetravel::TimeTraveler;
use idna_replay::vproc::VprocConfig;
use replay_race::classify::{ClassifierConfig, OutcomeGroup, Verdict};
use replay_race::pipeline::{run_pipeline, PipelineConfig};
use tvm::scheduler::RunConfig;
use workloads::browser::{browser_program, BrowserConfig};
use workloads::corpus::{corpus_executions, corpus_program};

#[test]
fn browser_pipeline_end_to_end() {
    let program = browser_program(&BrowserConfig::default());
    let result = run_pipeline(
        &program,
        &PipelineConfig::new(RunConfig::chunked(5, 1, 8).with_max_steps(10_000_000)),
    )
    .expect("pipeline");
    assert!(result.run_completed);
    // The browser has real races (racy stats, flag handoffs).
    assert!(result.detected.unique_races() >= 3, "{}", result.detected.unique_races());
    // The racy statistics counters must be flagged potentially harmful
    // (they change state) — the browser's developers would triage them.
    assert!(result.classification.with_verdict(Verdict::PotentiallyHarmful).count() >= 1);
    // Reports render for every race.
    let text = result.report.to_text();
    assert!(text.contains("data race report"));
    // Log sizes are sane.
    assert!(result.log_size.raw_bytes > 0);
    assert!(result.log_size.compressed_bytes <= result.log_size.raw_bytes);
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let program = browser_program(&BrowserConfig::default());
    let cfg = PipelineConfig::new(RunConfig::chunked(9, 1, 6).with_max_steps(10_000_000));
    let a = run_pipeline(&program, &cfg).expect("pipeline");
    let b = run_pipeline(&program, &cfg).expect("pipeline");
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.detected.instance_count(), b.detected.instance_count());
    assert_eq!(a.log_size.raw_bytes, b.log_size.raw_bytes);
    let groups_a: Vec<_> = a.classification.races.values().map(|r| (r.id, r.group)).collect();
    let groups_b: Vec<_> = b.classification.races.values().map(|r| (r.id, r.group)).collect();
    assert_eq!(groups_a, groups_b);
}

#[test]
fn permissive_control_flow_fixes_the_replayer_limitation_races() {
    // Paper §5.2.4: six really-benign races were classified potentially
    // harmful only because the alternative replay left recorded code. With
    // permissive control flow (the paper's proposed fix), those races
    // classify No-State-Change.
    let exec = corpus_executions()
        .into_iter()
        .find(|e| e.name == "e09_font_cache") // contains dc_c1, a limitation race
        .expect("known execution");
    let enabled: BTreeSet<&str> = exec.enabled.iter().copied().collect();
    let program = corpus_program(&enabled);

    let strict = run_pipeline(&program, &PipelineConfig::new(exec.schedule)).expect("pipeline");
    let mut cfg = PipelineConfig::new(exec.schedule);
    cfg.classifier = ClassifierConfig {
        vproc: VprocConfig { permissive_control_flow: true, ..VprocConfig::default() },
        ..ClassifierConfig::default()
    };
    let permissive = run_pipeline(&program, &cfg).expect("pipeline");

    let dc_cold_id = {
        let pc_a = program.mark("dc_c1.init_flag").unwrap();
        let pc_b = program.mark("dc_c1.outer_check").unwrap();
        replay_race::detect::StaticRaceId::new(pc_a, pc_b)
    };
    assert_eq!(strict.classification.races[&dc_cold_id].group, OutcomeGroup::ReplayFailure);
    assert_eq!(
        permissive.classification.races[&dc_cold_id].group,
        OutcomeGroup::NoStateChange,
        "the paper predicts the limitation races become no-state-change"
    );
}

#[test]
fn time_travel_reconstructs_states_along_a_pipeline_trace() {
    let program = browser_program(&BrowserConfig { fetchers: 2, parsers: 1, jobs: 4, work: 8 });
    let result = run_pipeline(
        &program,
        &PipelineConfig::new(RunConfig::round_robin(4).with_max_steps(10_000_000)),
    )
    .expect("pipeline");
    let tt = TimeTraveler::new(&result.trace);
    // Walk backwards through the first thread's execution; every state must
    // be reconstructible.
    let last_region = result
        .trace
        .regions()
        .iter()
        .rfind(|r| r.region.id.tid == 0)
        .expect("thread 0 has regions");
    let end = last_region.region.end_instr;
    for back in 1..=end.min(10) {
        assert!(tt.state_before(0, end - back).is_some(), "state {} steps back must exist", back);
    }
}

#[test]
fn report_json_round_trips_for_real_workloads() {
    let program = browser_program(&BrowserConfig::default());
    let result = run_pipeline(
        &program,
        &PipelineConfig::new(RunConfig::chunked(5, 1, 8).with_max_steps(10_000_000)),
    )
    .expect("pipeline");
    let json = result.report.to_json();
    let parsed = replay_race::report::Report::from_json(&json).expect("parse");
    assert_eq!(parsed.races.len(), result.report.races.len());
}
