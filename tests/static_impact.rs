//! Cross-validation of the value-impact taint pass against the replay
//! classifier (the tentpole invariants of DESIGN.md D13):
//!
//! 1. **Zero-flip**: skipping replays for impact-unreachable warnings —
//!    alone (`TrustStatic::SkipUnreachable`) or combined with the idiom
//!    tier (`TrustStatic::SkipBoth`) — leaves every race's verdict and
//!    outcome group byte-identical to trust-off, over every corpus
//!    pattern under two schedules and both batch modes.
//! 2. **Soundness**: no race the pass proves `Unreachable` is ever
//!    classified anything but No-State-Change by replay.
//! 3. **Savings**: corpus-wide, the combined tier skips strictly more
//!    vproc replays than the PR 4 idiom tier's 282.

use std::collections::BTreeSet;

use idna_replay::recorder::record;
use idna_replay::replayer::replay;
use replay_race::classify::{
    classify_races, classify_races_with, predictions_by_id, BatchMode, ClassifierConfig,
    OutcomeGroup, TrustStatic,
};
use replay_race::detect::{detect_races, DetectorConfig};
use tvm::scheduler::RunConfig;
use workloads::corpus::{corpus_program, instance_ids};
use workloads::eval::run_trust_ablation;

fn schedules() -> Vec<RunConfig> {
    vec![
        RunConfig::round_robin(2).with_max_steps(400_000),
        RunConfig::chunked(9, 1, 6).with_max_steps(400_000),
    ]
}

#[test]
fn skip_unreachable_never_changes_a_verdict_or_group() {
    let mut skipped_somewhere = 0u64;
    for id in instance_ids() {
        let enabled: BTreeSet<&str> = [id].into_iter().collect();
        let program = corpus_program(&enabled);
        let predictions = predictions_by_id(&racecheck::analyze(&program));
        for schedule in schedules() {
            let recording = record(&program, &schedule);
            let trace = replay(&program, &recording.log).expect("fresh recordings replay");
            let detected = detect_races(&trace, &DetectorConfig::default());
            for batching in [BatchMode::Off, BatchMode::Shared] {
                let baseline = classify_races(
                    &trace,
                    &detected,
                    &ClassifierConfig { batching, ..ClassifierConfig::default() },
                );
                for trust in [TrustStatic::SkipUnreachable, TrustStatic::SkipBoth] {
                    let config = ClassifierConfig {
                        trust_static: trust,
                        batching,
                        ..ClassifierConfig::default()
                    };
                    let trusted =
                        classify_races_with(&trace, &detected, &config, Some(&predictions));
                    assert_eq!(
                        baseline.races.keys().collect::<Vec<_>>(),
                        trusted.races.keys().collect::<Vec<_>>(),
                        "{id}/{trust:?}/{batching:?}: trusting proofs added or dropped races"
                    );
                    for (race_id, base) in &baseline.races {
                        let t = &trusted.races[race_id];
                        assert_eq!(
                            base.verdict, t.verdict,
                            "{id}/{trust:?}/{batching:?}: {race_id} verdict flipped"
                        );
                        assert_eq!(
                            base.group, t.group,
                            "{id}/{trust:?}/{batching:?}: {race_id} group changed"
                        );
                    }
                    assert!(
                        trusted.vproc_replays <= baseline.vproc_replays,
                        "{id}/{trust:?}/{batching:?}: trusting proofs added replays"
                    );
                    skipped_somewhere += trusted.static_skipped_races;
                }
            }
        }
    }
    assert!(skipped_somewhere > 0, "the corpus must exercise the skip-unreachable path");
}

#[test]
fn impact_unreachable_races_always_replay_to_no_state_change() {
    let mut checked = 0usize;
    for id in instance_ids() {
        let enabled: BTreeSet<&str> = [id].into_iter().collect();
        let program = corpus_program(&enabled);
        let predictions = predictions_by_id(&racecheck::analyze(&program));
        for schedule in schedules() {
            let recording = record(&program, &schedule);
            let trace = replay(&program, &recording.log).expect("fresh recordings replay");
            let detected = detect_races(&trace, &DetectorConfig::default());
            let result = classify_races(&trace, &detected, &ClassifierConfig::default());
            for (race_id, race) in &result.races {
                if predictions
                    .get(race_id)
                    .is_some_and(|p| p.reach == racecheck::Reach::Unreachable)
                {
                    assert_eq!(
                        race.group,
                        OutcomeGroup::NoStateChange,
                        "{id}: {race_id} proven impact-unreachable but replay observed {:?} — \
                         the taint pass is unsound",
                        race.group
                    );
                    checked += 1;
                }
            }
        }
    }
    assert!(checked > 0, "the corpus must materialize impact-unreachable races");
}

#[test]
fn combined_trust_tier_beats_the_idiom_tier_alone() {
    let ablation = run_trust_ablation();
    assert!(
        ablation.verdict_flips.is_empty(),
        "a trust tier flipped verdicts: {:?}",
        ablation.verdict_flips
    );
    for (label, report) in
        [("skip-unreachable", &ablation.unreachable), ("combined", &ablation.combined)]
    {
        assert_eq!(
            ablation.baseline.merged.races.keys().collect::<Vec<_>>(),
            report.merged.races.keys().collect::<Vec<_>>(),
            "{label}: trusting proofs must not add or drop races"
        );
    }
    assert!(
        ablation.replays_saved_unreachable() > 0,
        "the impact tier must save replays on its own"
    );
    assert!(
        ablation.replays_saved_combined() >= ablation.replays_saved(),
        "combining tiers must never save less than the idiom tier alone"
    );
    // The PR 4 idiom tier saved 282 vproc replays on the then-current
    // corpus; the combined tier must beat that bar on today's.
    assert!(
        ablation.replays_saved_combined() > 282,
        "combined tier saved only {} vproc replays",
        ablation.replays_saved_combined()
    );
}
