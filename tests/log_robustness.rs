//! Corruption-robustness suite for log ingestion (`DESIGN.md` §D10).
//!
//! Three contracts, checked with seeded corruption so failures reproduce
//! from the printed case label alone:
//!
//! 1. Decoding — strict or tolerant — never panics on corrupted bytes,
//!    only `Ok` or `CodecError`.
//! 2. A tolerant decode never lies: frames reported intact are
//!    byte-identical to what was recorded.
//! 3. Degraded classification never flips a verdict. Races untouched by
//!    the damage classify exactly as on the clean log; races whose
//!    evidence was lost come back as replay failures (`LogDamage`),
//!    never as a silently different verdict.
//!
//! The `corrupt_logs` bench binary sweeps the full corpus with more
//! corruptor classes; this suite keeps a fast deterministic core in the
//! tier-1 test run.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use idna_replay::codec::{decode_log_mode, encode_log, frame_spans, strip_damaged, DecodeMode};
use idna_replay::recorder::record;
use idna_replay::replayer::replay;
use idna_replay::vproc::ReplayFailure;
use replay_race::classify::{classify_races_with, ClassifierConfig, InstanceOutcome, OutcomeGroup};
use replay_race::detect::{detect_races, DetectorConfig};
use replay_race::pipeline::damage_profile;
use tvm::isa::Reg;
use tvm::program::Program;
use tvm::rng::SplitMix64;
use tvm::scheduler::RunConfig;
use tvm::ProgramBuilder;
use workloads::corpus::{corpus_program, instance_ids};

/// Frame header size in the v2 container (u32 length + u64 checksum).
const FRAME_HEADER: usize = 12;

/// Records one corpus pattern in isolation and returns its encoded log.
fn pattern_log(id: &str) -> (idna_replay::event::ReplayLog, Vec<u8>) {
    let program = corpus_program(&BTreeSet::from([id]));
    let schedule = RunConfig::round_robin(2).with_max_steps(400_000);
    let recording = record(&program, &schedule);
    let raw = encode_log(&recording.log);
    (recording.log, raw)
}

/// A deterministic sample of corpus patterns — enough to cover the frame
/// shapes (many threads, heap traffic, faults) without recording all of
/// them in the tier-1 run.
fn sampled_patterns() -> Vec<&'static str> {
    instance_ids().into_iter().step_by(9).collect()
}

/// Asserts both decode modes handle `bytes` without panicking, and that a
/// tolerant `Ok` only reports byte-identical frames as intact.
fn check_decode_contract(bytes: &[u8], original: &idna_replay::event::ReplayLog, label: &str) {
    let strict =
        catch_unwind(AssertUnwindSafe(|| decode_log_mode(bytes, DecodeMode::Strict).map(|_| ())));
    assert!(strict.is_ok(), "{label}: strict decode panicked");
    let tolerant = catch_unwind(AssertUnwindSafe(|| decode_log_mode(bytes, DecodeMode::Tolerant)));
    let Ok(tolerant) = tolerant else { panic!("{label}: tolerant decode panicked") };
    if let Ok((log, report)) = tolerant {
        for frame in report.frames.iter().filter(|f| f.status.is_intact()) {
            assert_eq!(
                Some(&log.threads[frame.tid]),
                original.threads.get(frame.tid),
                "{label}: frame {} reported intact but differs from the recording",
                frame.tid
            );
        }
    }
}

#[test]
fn bit_flips_never_panic_and_never_fool_the_decoder() {
    for id in sampled_patterns() {
        let (original, raw) = pattern_log(id);
        let mut rng = SplitMix64::new(0xf11b);
        for i in 0..raw.len() {
            let mut mutant = raw.clone();
            mutant[i] ^= 1 << rng.next_below(8);
            check_decode_contract(&mutant, &original, &format!("{id} flip @{i}"));
        }
    }
}

#[test]
fn truncations_never_panic_and_salvage_the_intact_prefix() {
    for id in sampled_patterns() {
        let (original, raw) = pattern_log(id);
        let spans = frame_spans(&raw);
        assert!(!spans.is_empty(), "{id}: a v2 log has frames");
        // Every frame boundary (and one byte around it), plus a byte-level
        // stride so mid-frame and mid-header cuts are covered too.
        let mut cuts: Vec<usize> =
            spans.iter().flat_map(|s| [s.start.saturating_sub(1), s.start, s.start + 1]).collect();
        cuts.extend((0..raw.len()).step_by(23));
        for cut in cuts {
            let mutant = &raw[..cut.min(raw.len())];
            check_decode_contract(mutant, &original, &format!("{id} cut @{cut}"));
        }
        // Cutting exactly at frame k's start keeps frames 0..k intact.
        for (k, span) in spans.iter().enumerate() {
            let (_, report) = decode_log_mode(&raw[..span.start], DecodeMode::Tolerant)
                .unwrap_or_else(|e| panic!("{id}: boundary cut at frame {k} must salvage: {e}"));
            assert!(
                report.frames.iter().take(k).all(|f| f.status.is_intact()),
                "{id}: frames before the cut at frame {k} must stay intact"
            );
            assert!(
                report.frames.iter().skip(k).all(|f| !f.status.is_intact()),
                "{id}: frames at/after the cut at frame {k} must be reported damaged"
            );
        }
    }
}

#[test]
fn single_frame_damage_leaves_every_other_thread_identical() {
    let (original, raw) = pattern_log("hf_rc");
    let spans = frame_spans(&raw);
    for (k, span) in spans.iter().enumerate() {
        let mut mutant = raw.clone();
        // Flip a payload byte well inside frame k (skip its 12-byte header).
        mutant[span.start + FRAME_HEADER + 2] ^= 0x10;
        let (log, report) =
            decode_log_mode(&mutant, DecodeMode::Tolerant).expect("one bad frame must salvage");
        assert_eq!(report.damaged_frames(), 1, "frame {k}");
        assert!(!report.frames[k].status.is_intact(), "frame {k} must be the damaged one");
        for (tid, thread) in log.threads.iter().enumerate() {
            if tid != k {
                assert_eq!(thread, &original.threads[tid], "thread {tid} (damaged frame {k})");
            }
        }
    }
}

/// Five threads: reader `a` races writers `b`/`c` on global `0x20`, and
/// reader `d` races writer `e` on the disjoint global `0x40`. Damaging
/// c's frame must push the a–b race to `LogDamage` (c's lost write taints
/// `0x20`) while leaving the d–e verdict untouched.
fn two_island_program() -> Arc<Program> {
    // Each reader's racing load is its *first* access to the address. A
    // pair replay oracle-replays both prefixes first and copies recorded
    // load values into its overlay, so any earlier same-address access on
    // either side would satisfy the live load from trusted recorded
    // values and never touch the damage-tainted global history.
    let mut b = ProgramBuilder::new();
    b.thread("a");
    b.load(Reg::R2, Reg::R15, 0x20).halt();
    b.thread("b");
    b.movi(Reg::R1, 2).store(Reg::R1, Reg::R15, 0x20).halt();
    b.thread("c");
    b.movi(Reg::R1, 3).store(Reg::R1, Reg::R15, 0x20).halt();
    b.thread("d");
    b.load(Reg::R2, Reg::R15, 0x40).halt();
    b.thread("e");
    b.movi(Reg::R1, 5).store(Reg::R1, Reg::R15, 0x40).halt();
    Arc::new(b.build())
}

#[test]
fn degraded_classification_never_flips_undamaged_verdicts() {
    let program = two_island_program();
    let schedule = RunConfig::round_robin(1);
    let recording = record(&program, &schedule);
    let raw = encode_log(&recording.log);
    let config = ClassifierConfig::default();

    // Clean baseline.
    let clean_trace = replay(&program, &recording.log).expect("clean replay");
    let clean_detected = detect_races(&clean_trace, &DetectorConfig::default());
    let clean = classify_races_with(&clean_trace, &clean_detected, &config, None);
    assert_eq!(clean.log_damaged_races, 0);

    // Corrupt thread c's frame at its tid varint: the checksum rejects the
    // frame and the salvager sees a tid/slot mismatch, so c degrades to a
    // placeholder (its write of 0x20 is lost entirely).
    let spans = frame_spans(&raw);
    let mut mutant = raw.clone();
    mutant[spans[2].start + FRAME_HEADER] ^= 0x01;
    let (log, report) = decode_log_mode(&mutant, DecodeMode::Tolerant).expect("salvage");
    assert_eq!(report.damaged_frames(), 1);
    assert!(log.threads[2].events.is_empty(), "c must degrade to a placeholder");

    // Tolerant pipeline: replay (with the placeholder fallback the CLI
    // uses), attach the damage profile, detect, classify.
    let mut trace = match replay(&program, &log) {
        Ok(trace) => trace,
        Err(_) => replay(&program, &strip_damaged(&log, &report)).expect("stripped replay"),
    };
    trace.set_damage(damage_profile(&program, &report));
    let detected = detect_races(&trace, &DetectorConfig::default());
    let damaged = classify_races_with(&trace, &detected, &config, None);

    let touches_damage = |race: &replay_race::classify::ClassifiedRace| {
        race.instances
            .iter()
            .any(|i| i.outcome == InstanceOutcome::ReplayFailure(ReplayFailure::LogDamage))
    };
    let mut damaged_count = 0u64;
    let mut preserved = 0u64;
    for (id, race) in &damaged.races {
        if touches_damage(race) {
            damaged_count += 1;
            assert_eq!(race.group, OutcomeGroup::ReplayFailure, "{id}");
        } else {
            let baseline = clean
                .races
                .get(id)
                .unwrap_or_else(|| panic!("{id}: race without damage must exist in the clean run"));
            assert_eq!(race.verdict, baseline.verdict, "{id}: verdict flipped under damage");
            assert_eq!(race.group, baseline.group, "{id}: group flipped under damage");
            preserved += 1;
        }
    }
    // The a–b race survives detection (both threads intact) but classifies
    // LogDamage because c's lost write taints 0x20; the d–e race on 0x40
    // is untouched and must classify identically to the clean run.
    assert!(damaged_count >= 1, "the race on the tainted global must surface as LogDamage");
    assert!(preserved >= 1, "the disjoint race must keep its clean verdict");
    assert_eq!(damaged.log_damaged_races, damaged_count);
}
