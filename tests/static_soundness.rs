//! Soundness of the static race analyzer against the dynamic detector.
//!
//! `racecheck::analyze` promises a conservative over-approximation: every
//! race the happens-before detector can report must already be in the
//! static candidate set. These tests pin that claim over the whole corpus
//! — all planted race patterns, each execution run under its own schedule
//! *and* an alternate schedule — and verify that using the candidate set
//! as a detector pre-filter changes cost counters only, never verdicts.

use std::collections::BTreeSet;
use std::sync::Arc;

use idna_replay::recorder::record;
use idna_replay::replayer::replay;
use idna_replay::vproc::VprocConfig;
use replay_race::detect::{detect_races, DetectorConfig};
use replay_race::static_feed::classify_static_warnings;
use tvm::scheduler::RunConfig;
use workloads::corpus::{corpus_executions, corpus_program};
use workloads::eval::run_static_eval;

/// An alternate schedule that differs from the execution's pinned one, so
/// each pattern is exercised under two genuinely different interleavings.
fn alternate_schedule(index: usize) -> RunConfig {
    let seed = 1000 + index as u64;
    if index.is_multiple_of(2) {
        RunConfig::chunked(seed, 1, 4).with_max_steps(400_000)
    } else {
        RunConfig::round_robin(1 + index as u64 % 3).with_max_steps(400_000)
    }
}

#[test]
fn every_dynamic_race_is_a_static_candidate_and_the_prefilter_is_exact() {
    let executions = corpus_executions();
    let full: BTreeSet<&str> = executions.iter().flat_map(|e| e.enabled.iter().copied()).collect();
    let candidates = Arc::new(racecheck::analyze(&corpus_program(&full)).candidates);

    let mut dynamic_races = 0usize;
    let mut total_skipped = 0u64;
    for (index, exec) in executions.iter().enumerate() {
        let enabled: BTreeSet<&str> = exec.enabled.iter().copied().collect();
        let program = corpus_program(&enabled);
        for schedule in [exec.schedule, alternate_schedule(index)] {
            let rec = record(&program, &schedule);
            let trace = replay(&program, &rec.log).expect("corpus recording must replay");

            let unfiltered = detect_races(&trace, &DetectorConfig::default());
            for instance in &unfiltered.instances {
                let id = instance.static_id();
                assert!(
                    candidates.contains(id.pc_lo, id.pc_hi),
                    "{}: dynamic race {id} not in the static candidate set (unsound)",
                    exec.name
                );
            }
            dynamic_races += unfiltered.instances.len();

            let filtered_config = DetectorConfig {
                prefilter: Some(Arc::clone(&candidates)),
                ..DetectorConfig::default()
            };
            let filtered = detect_races(&trace, &filtered_config);
            assert_eq!(
                filtered.instances, unfiltered.instances,
                "{}: pre-filter changed the detected instances",
                exec.name
            );
            assert_eq!(
                filtered.by_static, unfiltered.by_static,
                "{}: pre-filter changed the per-race grouping",
                exec.name
            );
            assert_eq!(
                filtered.indexed_accesses + filtered.skipped_accesses,
                unfiltered.indexed_accesses,
                "{}: pre-filter dropped accesses without accounting for them",
                exec.name
            );
            total_skipped += filtered.skipped_accesses;
        }
    }
    assert!(dynamic_races > 0, "the corpus must exercise dynamic races");
    assert!(total_skipped > 0, "the pre-filter should skip some private accesses");
}

#[test]
fn order_pruning_is_sound_per_execution() {
    // The statically-ordered prune rule runs on the per-execution
    // programs (the inputs the detector pre-filter analyzes). For every
    // execution, under its pinned schedule *and* an alternate one: the
    // per-execution candidate set still covers every dynamic race — in
    // particular, no pair the order pass proved ordered ever races.
    let executions = corpus_executions();
    let mut order_pruned_somewhere = 0usize;
    for (index, exec) in executions.iter().enumerate() {
        let enabled: BTreeSet<&str> = exec.enabled.iter().copied().collect();
        let program = corpus_program(&enabled);
        let analysis = racecheck::analyze(&program);
        let base = racecheck::analyze_without_order(&program);

        // The order pass only ever shrinks the candidate set, and a pair
        // is pruned or a candidate, never both.
        for (lo, hi) in analysis.candidates.iter() {
            assert!(
                base.candidates.contains(lo, hi),
                "{}: order pass added candidate ({lo}, {hi})",
                exec.name
            );
        }
        for (&(lo, hi), reason) in &analysis.pruned {
            assert!(
                !analysis.candidates.contains(lo, hi),
                "{}: ({lo}, {hi}) both pruned ({}) and a candidate",
                exec.name,
                reason.tag()
            );
        }
        order_pruned_somewhere += analysis.stats.pruned_statically_ordered as usize;

        // May-happen-in-parallel is symmetric over the memory pcs.
        let threads = program.threads().len();
        let pcs: Vec<usize> = analysis.candidates.monitored().collect();
        for ta in 0..threads {
            for tb in 0..threads {
                for &pc_a in &pcs {
                    for &pc_b in &pcs {
                        assert_eq!(
                            analysis.order.may_happen_in_parallel(ta, pc_a, tb, pc_b),
                            analysis.order.may_happen_in_parallel(tb, pc_b, ta, pc_a),
                            "{}: MHP asymmetric for t{ta}:{pc_a} vs t{tb}:{pc_b}",
                            exec.name
                        );
                    }
                }
            }
        }

        for schedule in [exec.schedule, alternate_schedule(index)] {
            let rec = record(&program, &schedule);
            let trace = replay(&program, &rec.log).expect("corpus recording must replay");
            let detected = detect_races(&trace, &DetectorConfig::default());
            for instance in &detected.instances {
                let id = instance.static_id();
                assert!(
                    analysis.candidates.contains(id.pc_lo, id.pc_hi),
                    "{}: dynamic race {id} missing from the per-execution candidates \
                     (pruned: {:?})",
                    exec.name,
                    analysis.pruned.get(&(id.pc_lo, id.pc_hi))
                );
            }
        }
    }
    assert!(order_pruned_somewhere > 0, "no execution exercised the order prune rule");
}

#[test]
fn static_feed_classifies_corpus_warnings() {
    let executions = corpus_executions();
    let exec = &executions[0];
    let enabled: BTreeSet<&str> = exec.enabled.iter().copied().collect();
    let program = corpus_program(&enabled);
    let candidates = racecheck::analyze(&program).candidates;

    let rec = record(&program, &exec.schedule);
    let trace = replay(&program, &rec.log).expect("corpus recording must replay");
    let summary = classify_static_warnings(&trace, &candidates, VprocConfig::default());
    assert_eq!(summary.warnings, candidates.len());
    assert_eq!(summary.materialized + summary.unmaterialized, summary.warnings);
    assert_eq!(summary.filtered + summary.flagged, summary.materialized);
    assert!(summary.materialized > 0, "{}: no warning materialized", exec.name);
}

#[test]
fn static_lint_of_the_corpus_program_smokes() {
    let executions = corpus_executions();
    let full: BTreeSet<&str> = executions.iter().flat_map(|e| e.enabled.iter().copied()).collect();
    let analysis = racecheck::analyze(&corpus_program(&full));
    assert!(!analysis.warnings.is_empty());
    assert_eq!(analysis.stats.candidate_pairs, analysis.candidates.len());

    let text = racecheck::render_text(&analysis);
    assert!(text.contains("candidate pair"), "{text}");
    let json = racecheck::render_json(&analysis).to_string_pretty();
    let parsed = minijson::Json::parse(&json).expect("lint json must parse");
    assert_eq!(
        parsed.get("stats").and_then(|s| s.get("candidate_pairs")).and_then(|v| v.as_u64()),
        Some(analysis.stats.candidate_pairs as u64)
    );
}

#[test]
fn static_eval_never_misses_a_harmful_race() {
    let eval = run_static_eval();
    assert_eq!(
        eval.static_alone.flagged_harmful, eval.static_alone.harmful_total,
        "static analysis missed a planted harmful race: {eval:?}"
    );
    assert_eq!(
        eval.combined.flagged_harmful, eval.combined.harmful_total,
        "replay classification filtered a planted harmful race: {eval:?}"
    );
    assert!(
        eval.combined.flagged_benign <= eval.static_alone.flagged_benign,
        "classification must not add benign flags: {eval:?}"
    );
    assert!(eval.covered > 0);
    println!("{eval}");
}
