//! End-to-end test of the racerepd classification service: boots a server
//! on an ephemeral port, submits workloads from four concurrent client
//! threads, and checks every response is byte-identical to the one-shot
//! `racerep races --format json` report. A second server generation over
//! the same cache directory then proves warm submissions classify with
//! zero virtual-processor replays, served from the persistent cache.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use minijson::Json;
use racerep::{cmd_races, cmd_record, cmd_submit, parse_schedule, FailOn};
use replay_race::classify::ClassifierConfig;
use serviced::{client, Server, ServerConfig};

fn sample(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/asm").join(name)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("racerepd-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One prepared workload: program source + recorded log container, plus
/// the expected one-shot report JSON.
struct Workload {
    name: &'static str,
    source: String,
    container: Vec<u8>,
    expected_json: String,
}

fn prepare(work: &Path, name: &'static str, schedule: &str) -> Workload {
    let program_path = sample(name);
    let log_path = work.join(format!("{name}.idna"));
    cmd_record(&program_path, &log_path, parse_schedule(schedule).unwrap()).unwrap();
    let expected_json =
        cmd_races(&program_path, &log_path, true, &ClassifierConfig::default(), None, false, false)
            .unwrap();
    Workload {
        name,
        source: std::fs::read_to_string(&program_path).unwrap(),
        container: std::fs::read(&log_path).unwrap(),
        expected_json,
    }
}

fn boot(cache_dir: &Path) -> (String, std::thread::JoinHandle<Result<(), String>>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        queue_capacity: 16,
        cache_dir: Some(cache_dir.to_path_buf()),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

#[test]
fn service_matches_one_shot_and_serves_warm_resubmits_from_cache() {
    let work = temp_dir("work");
    let cache_dir = temp_dir("cache");
    let workloads: Vec<Workload> = [
        ("handoff.tasm", "rr:2"),
        ("stats.tasm", "rr:2"),
        ("refcount.tasm", "chunked:3:1:6"),
        ("idiom_double_check.tasm", "rr:2"),
    ]
    .into_iter()
    .map(|(name, schedule)| prepare(&work, name, schedule))
    .collect();
    let workloads = Arc::new(workloads);

    // Generation 1 (cold): four concurrent clients, one workload each.
    let (addr, handle) = boot(&cache_dir);
    std::thread::scope(|scope| {
        for w in workloads.iter() {
            let addr = addr.clone();
            scope.spawn(move || {
                let response = client::submit(&addr, &w.source, &w.container, 40).unwrap();
                assert_eq!(
                    response.get("type").and_then(Json::as_str),
                    Some("result"),
                    "{}: {response:?}",
                    w.name
                );
                let got = response.get("report").unwrap().to_string_pretty();
                assert_eq!(got, w.expected_json, "{}: cold response differs from one-shot", w.name);
            });
        }
    });
    let stats = client::stats(&addr).unwrap();
    let completed = stats.get("jobs").unwrap().get("completed").and_then(Json::as_u64).unwrap();
    assert_eq!(completed, workloads.len() as u64);

    // Graceful drain: the run() thread exits cleanly after `shutdown`.
    client::shutdown(&addr).unwrap();
    handle.join().unwrap().expect("server drains cleanly");

    // Generation 2 (warm): a fresh process-equivalent over the same cache
    // directory. Every replay outcome must come from disk: zero vproc
    // replays, byte-identical reports.
    let (addr, handle) = boot(&cache_dir);
    for w in workloads.iter() {
        let response = client::submit(&addr, &w.source, &w.container, 40).unwrap();
        let got = response.get("report").unwrap().to_string_pretty();
        assert_eq!(got, w.expected_json, "{}: warm response differs from one-shot", w.name);
        let replays = response.get("replays").and_then(Json::as_u64).unwrap();
        assert_eq!(replays, 0, "{}: warm submission must not replay", w.name);
    }
    let stats = client::stats(&addr).unwrap();
    let persisted_hits =
        stats.get("cache").unwrap().get("persisted_hits").and_then(Json::as_u64).unwrap();
    assert!(persisted_hits > 0, "warm hits must be served from the persistent segments");
    client::shutdown(&addr).unwrap();
    handle.join().unwrap().expect("server drains cleanly");

    let _ = std::fs::remove_dir_all(&work);
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// `racerep submit --fail-on harmful` gates the exit code on the remote
/// verdicts, exactly like `lint` gates on static warnings.
#[test]
fn submit_fail_on_harmful_sets_the_exit_code() {
    let work = temp_dir("failon");
    let cache_dir = temp_dir("failon-cache");
    let (addr, handle) = boot(&cache_dir);

    // stats.tasm: racy counters classify potentially harmful (the paper's
    // approximate-computation pattern).
    let harmful_prog = sample("stats.tasm");
    let harmful_log = work.join("stats.idna");
    cmd_record(&harmful_prog, &harmful_log, parse_schedule("rr:2").unwrap()).unwrap();
    let (_, code) = cmd_submit(&harmful_prog, &harmful_log, &addr, false, FailOn::Harmful).unwrap();
    assert_eq!(code, 1, "harmful verdicts must trip --fail-on harmful");
    let (_, code) = cmd_submit(&harmful_prog, &harmful_log, &addr, true, FailOn::None).unwrap();
    assert_eq!(code, 0, "fail-on none never gates");

    // handoff.tasm: the flag handoff filters benign, so the gate stays
    // open.
    let benign_prog = sample("handoff.tasm");
    let benign_log = work.join("handoff.idna");
    cmd_record(&benign_prog, &benign_log, parse_schedule("rr:2").unwrap()).unwrap();
    let (_, code) = cmd_submit(&benign_prog, &benign_log, &addr, false, FailOn::Harmful).unwrap();
    assert_eq!(code, 0, "benign-only reports must not trip the gate");

    client::shutdown(&addr).unwrap();
    handle.join().unwrap().expect("server drains cleanly");
    let _ = std::fs::remove_dir_all(&work);
    let _ = std::fs::remove_dir_all(&cache_dir);
}
