//! Property-based soundness tests over randomly generated multi-threaded
//! programs:
//!
//! * the happens-before detector reports only genuine conflicts in
//!   unordered regions (the paper's "no false positives" claim),
//! * record→replay is faithful for every schedule,
//! * classification outcomes are consistent with the virtual processor's
//!   live-outs,
//! * the log codec round-trips real logs.

use proptest::prelude::*;
use std::sync::Arc;

use idna_replay::codec::{compress, decode_log, decompress, encode_log};
use idna_replay::recorder::record;
use idna_replay::replayer::replay;
use idna_replay::vproc::{PairOrder, Vproc, VprocConfig};
use replay_race::classify::{classify_races, ClassifierConfig, InstanceOutcome};
use replay_race::detect::{detect_races, DetectorConfig};
use tvm::exec::AccessKind;
use tvm::isa::{BinOp, Cond, Reg, RmwOp, SysCall};
use tvm::scheduler::RunConfig;
use tvm::{Program, ProgramBuilder};

/// A tiny random "statement" for generated threads. All memory operands
/// stay in a small shared window of globals so threads genuinely conflict.
#[derive(Clone, Debug)]
enum Stmt {
    SetReg { reg: u8, value: u64 },
    Load { reg: u8, slot: u8 },
    Store { reg: u8, slot: u8 },
    Add { dst: u8, src: u8 },
    AtomicAdd { slot: u8 },
    Fence,
    Print { reg: u8 },
    Nop,
    /// A bounded loop decrementing a register.
    Loop { reg: u8, count: u8 },
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (1u8..8, any::<u64>()).prop_map(|(reg, value)| Stmt::SetReg { reg, value }),
        (1u8..8, 0u8..6).prop_map(|(reg, slot)| Stmt::Load { reg, slot }),
        (1u8..8, 0u8..6).prop_map(|(reg, slot)| Stmt::Store { reg, slot }),
        (1u8..8, 1u8..8).prop_map(|(dst, src)| Stmt::Add { dst, src }),
        (0u8..6).prop_map(|slot| Stmt::AtomicAdd { slot }),
        Just(Stmt::Fence),
        (1u8..8).prop_map(|reg| Stmt::Print { reg }),
        Just(Stmt::Nop),
        (1u8..8, 1u8..5).prop_map(|(reg, count)| Stmt::Loop { reg, count }),
    ]
}

fn build_program(threads: &[Vec<Stmt>]) -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    for (i, body) in threads.iter().enumerate() {
        b.thread(&format!("t{i}"));
        for (j, stmt) in body.iter().enumerate() {
            match *stmt {
                Stmt::SetReg { reg, value } => {
                    b.movi(Reg::new(reg), value);
                }
                Stmt::Load { reg, slot } => {
                    b.load(Reg::new(reg), Reg::R15, i64::from(slot) + 0x20);
                }
                Stmt::Store { reg, slot } => {
                    b.store(Reg::new(reg), Reg::R15, i64::from(slot) + 0x20);
                }
                Stmt::Add { dst, src } => {
                    b.bin(BinOp::Add, Reg::new(dst), Reg::new(dst), Reg::new(src));
                }
                Stmt::AtomicAdd { slot } => {
                    b.movi(Reg::R9, 1).atomic_rmw(
                        RmwOp::Add,
                        Reg::R10,
                        Reg::R15,
                        i64::from(slot) + 0x20,
                        Reg::R9,
                    );
                }
                Stmt::Fence => {
                    b.fence();
                }
                Stmt::Print { reg } => {
                    b.print(Reg::new(reg));
                }
                Stmt::Nop => {
                    b.syscall(SysCall::Nop);
                }
                Stmt::Loop { reg, count } => {
                    let top = b.fresh_label(&format!("t{i}_s{j}_loop"));
                    b.movi(Reg::new(reg), u64::from(count))
                        .label(top)
                        .subi(Reg::new(reg), Reg::new(reg), 1)
                        .branch(Cond::Ne, Reg::new(reg), Reg::R15, top);
                }
            }
        }
        b.halt();
    }
    Arc::new(b.build())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every race the detector reports is two accesses by different
    /// threads to the same address, at least one a write, in regions that
    /// genuinely overlap by sequencer timestamps.
    #[test]
    fn detector_reports_only_true_conflicts(
        bodies in prop::collection::vec(prop::collection::vec(arb_stmt(), 1..12), 2..4),
        seed in any::<u64>(),
    ) {
        let program = build_program(&bodies);
        let rec = record(&program, &RunConfig::random(seed).with_max_steps(100_000));
        prop_assume!(rec.summary.completed);
        let trace = replay(&program, &rec.log).expect("replay");
        let detected = detect_races(&trace, &DetectorConfig::default());
        for inst in &detected.instances {
            prop_assert_ne!(inst.a.tid(), inst.b.tid(), "racing accesses in one thread");
            prop_assert_eq!(inst.a.addr, inst.b.addr, "racing accesses on different addresses");
            prop_assert!(
                inst.a.kind == AccessKind::Write || inst.b.kind == AccessKind::Write,
                "read-read pair reported"
            );
            let ra = trace.region(inst.a.region).region;
            let rb = trace.region(inst.b.region).region;
            prop_assert!(ra.overlaps(&rb), "regions {ra:?} and {rb:?} do not overlap");
        }
    }

    /// Record→replay fidelity: the replayed final architectural state of
    /// every thread equals the live machine's.
    #[test]
    fn replay_is_faithful(
        bodies in prop::collection::vec(prop::collection::vec(arb_stmt(), 1..12), 1..4),
        seed in any::<u64>(),
    ) {
        let program = build_program(&bodies);
        let rec = record(&program, &RunConfig::random(seed).with_max_steps(100_000));
        prop_assume!(rec.summary.completed);
        let trace = replay(&program, &rec.log).expect("replay");
        for tid in 0..program.threads().len() {
            let last = trace
                .regions()
                .iter().rfind(|r| r.region.id.tid == tid)
                .expect("thread has regions");
            prop_assert_eq!(&last.exit.regs, rec.machine.thread(tid).regs());
            // Outputs match per thread.
            let replayed: Vec<u64> = trace
                .regions()
                .iter()
                .filter(|r| r.region.id.tid == tid)
                .flat_map(|r| r.outputs.clone())
                .collect();
            let recorded: Vec<u64> = rec
                .machine
                .output()
                .iter()
                .filter(|o| o.tid == tid)
                .map(|o| o.value)
                .collect();
            prop_assert_eq!(replayed, recorded);
        }
    }

    /// A No-State-Change verdict really means both orders completed with
    /// identical live-outs (re-verified directly against the vproc).
    #[test]
    fn no_state_change_is_justified(
        bodies in prop::collection::vec(prop::collection::vec(arb_stmt(), 1..10), 2..4),
        seed in any::<u64>(),
    ) {
        let program = build_program(&bodies);
        let rec = record(&program, &RunConfig::random(seed).with_max_steps(100_000));
        prop_assume!(rec.summary.completed);
        let trace = replay(&program, &rec.log).expect("replay");
        let detected = detect_races(&trace, &DetectorConfig::default());
        let classified = classify_races(&trace, &detected, &ClassifierConfig::default());
        let vproc = Vproc::new(&trace, VprocConfig::default());
        for race in classified.races.values() {
            for ci in &race.instances {
                if ci.outcome == InstanceOutcome::NoStateChange {
                    let x = vproc
                        .run_pair(&ci.instance.a, &ci.instance.b, PairOrder::AThenB)
                        .expect("completed before");
                    let y = vproc
                        .run_pair(&ci.instance.a, &ci.instance.b, PairOrder::BThenA)
                        .expect("completed before");
                    prop_assert_eq!(x, y, "NSC instance re-verification failed");
                }
            }
        }
    }

    /// The codec round-trips every real log, and compression is lossless.
    #[test]
    fn codec_roundtrips_random_logs(
        bodies in prop::collection::vec(prop::collection::vec(arb_stmt(), 1..15), 1..4),
        seed in any::<u64>(),
    ) {
        let program = build_program(&bodies);
        let rec = record(&program, &RunConfig::random(seed).with_max_steps(100_000));
        let bytes = encode_log(&rec.log);
        let decoded = decode_log(&bytes).expect("decode");
        prop_assert_eq!(&rec.log, &decoded);
        let c = compress(&bytes);
        prop_assert_eq!(decompress(&c).expect("decompress"), bytes);
    }
}
