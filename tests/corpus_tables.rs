//! The headline regression test: the 18-execution corpus must reproduce
//! the paper's Table 1 and Table 2 **exactly** — plus the eight planted
//! idiom-exemplar races (`us_x1`/`dc_x1`/`rw_x1`/`db_x1`, all real-benign
//! No-State-Change) that exercise the Table 2 recognizers end-to-end —
//! with the soundness property the paper emphasizes: no harmful race is
//! ever filtered out as potentially benign.

use std::collections::BTreeSet;

use racecheck::{Confidence, Idiom};
use replay_race::classify::{predictions_by_id, OutcomeGroup};
use workloads::corpus::{corpus_executions, corpus_program};
use workloads::eval::{run_corpus, Figure, Table1, Table2};
use workloads::truth::{BenignCategory, HarmfulKind, TrueVerdict};

#[test]
fn corpus_reproduces_the_paper() {
    let report = run_corpus();

    // Every detected race is covered by the ground-truth manifests and
    // every planted race was dynamically detected.
    assert!(report.unexpected.is_empty(), "unplanted races: {:?}", report.unexpected);
    assert!(
        report.missing_races().is_empty(),
        "undetected planted races: {:?}",
        report.missing_races()
    );

    // Table 1 (paper §5.2.2): the paper's 68 unique races — 32
    // No-State-Change (all real-benign), 17 State-Change (15 benign + 2
    // harmful), 19 Replay-Failure (14 benign + 5 harmful) — plus the 8
    // idiom-exemplar races, the broken-handoff exemplar (`ho_x2`), and the
    // dead-value impact exemplars (`im_x1` plus the three `im_x3` scratch
    // words), all No-State-Change benign (32 + 8 + 1 + 4 = 45), plus the
    // sink-reaching impact exemplar (`im_x2`), State-Change harmful
    // (2 + 1 = 3).
    let t1 = Table1::compute(&report);
    assert_eq!(t1.cells, [[45, 0], [15, 3], [14, 5]], "Table 1 mismatch:\n{t1}");
    assert_eq!(t1.total(), 82);
    assert_eq!(t1.potentially_benign(), 45);
    assert_eq!(t1.potentially_harmful(), 37);

    // The paper's headline soundness result: every harmful race was
    // classified potentially harmful.
    assert_eq!(t1.missed_harmful(), 0, "a harmful race was filtered as benign");

    // And the headline productivity result: over half of the real benign
    // races are filtered out.
    let real_benign = 45 + t1.benign_flagged_harmful();
    assert!(45 * 2 >= real_benign, "less than half of the benign races were filtered");

    // Table 2 (paper §5.4): the paper's 61 benign races plus the 8
    // exemplars (+1 user-sync, +2 double-check, +3 redundant-write,
    // +2 disjoint-bits), the broken atomic handoff (+1 user-sync), and
    // the dead-value impact exemplars (+4 both-values-valid).
    let t2 = Table2::compute(&report);
    let expect = [
        (BenignCategory::UserConstructedSync, 10),
        (BenignCategory::DoubleCheck, 5),
        (BenignCategory::BothValuesValid, 9),
        (BenignCategory::RedundantWrite, 16),
        (BenignCategory::DisjointBitManipulation, 11),
        (BenignCategory::ApproximateComputation, 23),
    ];
    for (cat, count) in expect {
        assert_eq!(
            t2.counts.get(&cat).copied().unwrap_or(0),
            count,
            "Table 2 mismatch for {cat}:\n{t2}"
        );
    }
    assert_eq!(t2.total(), 74);

    // Figures 3-5 partition the 82 races: 45 + 8 + 29.
    let f3 = Figure::figure3(&report);
    let f4 = Figure::figure4(&report);
    let f5 = Figure::figure5(&report);
    assert_eq!(f3.bars.len(), 45, "Figure 3 bar count");
    assert_eq!(f4.bars.len(), 8, "Figure 4 bar count");
    assert_eq!(f5.bars.len(), 29, "Figure 5 bar count");

    // Figure 3: potentially-benign races never exposed anything.
    assert!(f3.bars.iter().all(|b| b.exposing == 0));
    // Figures 4/5: flagged races have at least one exposing instance.
    assert!(f4.bars.iter().all(|b| b.exposing >= 1));
    assert!(f5.bars.iter().all(|b| b.exposing >= 1));
    // Figure 4's lesson: some harmful race has many instances of which only
    // a fraction exposes it (the paper's "one in ten").
    assert!(
        f4.bars.iter().any(|b| b.instances >= 20 && b.exposing * 2 <= b.instances),
        "expected a harmful race with mostly-benign instances: {f4}"
    );
}

#[test]
fn idiom_exemplars_are_benign_and_statically_predicted() {
    // The four exemplar instances mirror examples/asm/idiom_*.tasm. Each
    // planted race must (a) carry the planted Table 2 ground truth, (b) be
    // replay-classified No-State-Change, and (c) be tagged by the matching
    // static recognizer at the expected confidence.
    let report = run_corpus();
    let executions = corpus_executions();
    let full: BTreeSet<&str> = executions.iter().flat_map(|e| e.enabled.iter().copied()).collect();
    let program = corpus_program(&full);
    let predictions = predictions_by_id(&racecheck::analyze(&program));

    let expect = [
        (
            "us_x1.set_flag",
            "us_x1.wait_flag",
            BenignCategory::UserConstructedSync,
            Idiom::SpinWait,
            Confidence::High,
        ),
        (
            "dc_x1.outer_check",
            "dc_x1.init_flag",
            BenignCategory::DoubleCheck,
            Idiom::DoubleCheck,
            Confidence::Low,
        ),
        (
            "dc_x1.init_flag",
            "dc_x1.init_flag",
            BenignCategory::DoubleCheck,
            Idiom::RedundantWrite,
            Confidence::High,
        ),
        (
            "rw_x1.write0",
            "rw_x1.write1",
            BenignCategory::RedundantWrite,
            Idiom::RedundantWrite,
            Confidence::High,
        ),
        // The corpus program contains one statically unresolved store (the
        // bv_w1 producer's moving buffer pointer), so the single-valued
        // proof behind write/read redundant-write pairs is downgraded to
        // Low corpus-wide. The standalone exemplar
        // examples/asm/idiom_redundant_write.tasm stays High.
        (
            "rw_x1.write0",
            "rw_x1.read0",
            BenignCategory::RedundantWrite,
            Idiom::RedundantWrite,
            Confidence::Low,
        ),
        (
            "rw_x1.write1",
            "rw_x1.read0",
            BenignCategory::RedundantWrite,
            Idiom::RedundantWrite,
            Confidence::Low,
        ),
        (
            "db_x1.write_low_byte",
            "db_x1.read_high_byte0",
            BenignCategory::DisjointBitManipulation,
            Idiom::DisjointBits,
            Confidence::High,
        ),
        (
            "db_x1.write_low_byte",
            "db_x1.read_high_byte1",
            BenignCategory::DisjointBitManipulation,
            Idiom::DisjointBits,
            Confidence::High,
        ),
    ];
    for (mark_a, mark_b, category, idiom, confidence) in expect {
        let pc_a = program.mark(mark_a).unwrap_or_else(|| panic!("mark {mark_a} missing"));
        let pc_b = program.mark(mark_b).unwrap_or_else(|| panic!("mark {mark_b} missing"));
        let id = replay_race::detect::StaticRaceId::new(pc_a, pc_b);

        assert_eq!(
            report.truth.verdict(id),
            Some(TrueVerdict::Benign(category)),
            "ground truth for ({mark_a}, {mark_b})"
        );
        let race = report
            .merged
            .races
            .get(&id)
            .unwrap_or_else(|| panic!("race ({mark_a}, {mark_b}) never detected"));
        assert_eq!(
            race.group,
            OutcomeGroup::NoStateChange,
            "replay verdict for ({mark_a}, {mark_b})"
        );

        let p = predictions
            .get(&id)
            .unwrap_or_else(|| panic!("no static prediction for ({mark_a}, {mark_b})"));
        assert_eq!(p.predicted.idiom, idiom, "idiom for ({mark_a}, {mark_b})");
        assert_eq!(p.predicted.confidence, confidence, "confidence for ({mark_a}, {mark_b})");
    }
}

#[test]
fn handoff_exemplars_round_trip() {
    // The two atomic-handoff instances pin the static order pass (D11)
    // against the dynamic ground truth, from both directions. The static
    // half runs on the per-execution programs — the exact inputs the
    // detector pre-filter analyzes, where the configuration gates of
    // disabled instances fold to zero and their code is provably dead.
    let report = run_corpus();
    let executions = corpus_executions();

    let race_id = |program: &tvm::program::Program, a: &str, b: &str| {
        let pc_a = program.mark(a).unwrap_or_else(|| panic!("mark {a} missing"));
        let pc_b = program.mark(b).unwrap_or_else(|| panic!("mark {b} missing"));
        replay_race::detect::StaticRaceId::new(pc_a, pc_b)
    };

    // ho_x1 (validated handoff), analyzed per-execution: the data pair is
    // proven ordered — pruned with the statically-ordered reason, no
    // candidate, and indeed never dynamically detected anywhere.
    let e01 = executions.iter().find(|e| e.name == "e01_shell_startup").expect("e01");
    assert!(e01.enabled.contains(&"ho_x1"));
    let program = corpus_program(&e01.enabled.iter().copied().collect());
    let analysis = racecheck::analyze(&program);
    let valid = race_id(&program, "ho_x1.publish", "ho_x1.consume");
    let key = (valid.pc_lo, valid.pc_hi);
    assert_eq!(
        analysis.pruned.get(&key),
        Some(&racecheck::PruneReason::StaticallyOrdered),
        "ho_x1 data pair must be pruned as statically ordered"
    );
    assert!(!analysis.candidates.contains(key.0, key.1));
    assert_eq!(analysis.stats.valid_handoffs, 1);
    assert!(analysis.stats.order_edges >= 1);
    assert!(report.truth.verdict(valid).is_none(), "ho_x1 plants no races");
    assert!(!report.merged.races.contains_key(&valid), "ho_x1 data pair detected dynamically");

    // On the full program the same pair must stay a candidate: bv_w1's
    // statically unresolved buffer store may hit the flag word, and the
    // order pass records that demotion instead of guessing.
    let full: BTreeSet<&str> = executions.iter().flat_map(|e| e.enabled.iter().copied()).collect();
    let full_program = corpus_program(&full);
    let full_analysis = racecheck::analyze(&full_program);
    let full_key = {
        let id = race_id(&full_program, "ho_x1.publish", "ho_x1.consume");
        (id.pc_lo, id.pc_hi)
    };
    assert!(full_analysis.candidates.contains(full_key.0, full_key.1));

    // ho_x2 (rogue second release), analyzed per-execution: the handoff is
    // demoted, the pair stays a candidate, and the race really happens —
    // benign, No-State-Change.
    let e04 = executions.iter().find(|e| e.name == "e04_media_scan").expect("e04");
    assert!(e04.enabled.contains(&"ho_x2"));
    let program = corpus_program(&e04.enabled.iter().copied().collect());
    let analysis = racecheck::analyze(&program);
    let broken = race_id(&program, "ho_x2.publish", "ho_x2.consume");
    assert!(analysis.candidates.contains(broken.pc_lo, broken.pc_hi));
    assert!(
        analysis.order.handoffs.iter().any(|h| h.demoted.is_some_and(|d| d.tag() == "rogue_write")),
        "ho_x2 flag word must be demoted for its rogue second release"
    );
    assert_eq!(
        report.truth.verdict(broken),
        Some(TrueVerdict::Benign(BenignCategory::UserConstructedSync)),
        "ground truth for (ho_x2.publish, ho_x2.consume)"
    );
    let race = report.merged.races.get(&broken).expect("ho_x2 race never detected");
    assert_eq!(race.group, OutcomeGroup::NoStateChange);
}

#[test]
fn impact_exemplars_round_trip() {
    // The two value-impact instances (DESIGN.md D13) pin the taint pass
    // against the dynamic ground truth from both directions: the
    // dead-value race is proven unreachable and replays No-State-Change;
    // the sink-reaching race is proven to hit the output stream and the
    // replay really observes the divergence.
    let report = run_corpus();
    let executions = corpus_executions();
    let full: BTreeSet<&str> = executions.iter().flat_map(|e| e.enabled.iter().copied()).collect();
    let program = corpus_program(&full);
    let analysis = racecheck::analyze(&program);
    let race_id = |a: &str, b: &str| {
        let pc_a = program.mark(a).unwrap_or_else(|| panic!("mark {a} missing"));
        let pc_b = program.mark(b).unwrap_or_else(|| panic!("mark {b} missing"));
        replay_race::detect::StaticRaceId::new(pc_a, pc_b)
    };
    let impact = |id: replay_race::detect::StaticRaceId| {
        analysis
            .warnings
            .iter()
            .find(|w| w.lo.pc == id.pc_lo && w.hi.pc == id.pc_hi)
            .map(|w| w.impact.clone())
            .unwrap_or_else(|| panic!("no warning for {id}"))
    };

    let dead = race_id("im_x1.dead_store", "im_x1.dead_load");
    assert_eq!(
        report.truth.verdict(dead),
        Some(TrueVerdict::Benign(BenignCategory::BothValuesValid)),
        "ground truth for im_x1"
    );
    let race = report.merged.races.get(&dead).expect("im_x1 race never detected");
    assert_eq!(race.group, OutcomeGroup::NoStateChange);
    assert_eq!(impact(dead).reach, racecheck::Reach::Unreachable);

    let sink = race_id("im_x2.sink_store", "im_x2.sink_load");
    assert_eq!(
        report.truth.verdict(sink),
        Some(TrueVerdict::Harmful(HarmfulKind::RacyPublication)),
        "ground truth for im_x2"
    );
    let race = report.merged.races.get(&sink).expect("im_x2 race never detected");
    assert_eq!(race.group, OutcomeGroup::StateChange);
    let sink_impact = impact(sink);
    assert_eq!(sink_impact.reach, racecheck::Reach::Proven);
    assert!(!sink_impact.sink_chain.is_empty(), "proven impact carries its witness chain");
}

#[test]
fn corpus_is_deterministic() {
    // The whole evaluation is replay-based and seeded: two runs must agree
    // bit for bit.
    let a = run_corpus();
    let b = run_corpus();
    assert_eq!(Table1::compute(&a), Table1::compute(&b));
    assert_eq!(Table2::compute(&a), Table2::compute(&b));
    assert_eq!(a.total_instructions, b.total_instructions);
    for (x, y) in a.merged.races.values().zip(b.merged.races.values()) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.group, y.group);
        assert_eq!(x.counts, y.counts);
    }
}
