//! The headline regression test: the 18-execution corpus must reproduce
//! the paper's Table 1 and Table 2 **exactly**, with the soundness property
//! the paper emphasizes — no harmful race is ever filtered out as
//! potentially benign.

use workloads::eval::{run_corpus, Figure, Table1, Table2};
use workloads::truth::BenignCategory;

#[test]
fn corpus_reproduces_the_paper() {
    let report = run_corpus();

    // Every detected race is covered by the ground-truth manifests and
    // every planted race was dynamically detected.
    assert!(report.unexpected.is_empty(), "unplanted races: {:?}", report.unexpected);
    assert!(
        report.missing_races().is_empty(),
        "undetected planted races: {:?}",
        report.missing_races()
    );

    // Table 1 (paper §5.2.2): 68 unique races; 32 No-State-Change (all
    // real-benign), 17 State-Change (15 benign + 2 harmful), 19
    // Replay-Failure (14 benign + 5 harmful).
    let t1 = Table1::compute(&report);
    assert_eq!(t1.cells, [[32, 0], [15, 2], [14, 5]], "Table 1 mismatch:\n{t1}");
    assert_eq!(t1.total(), 68);
    assert_eq!(t1.potentially_benign(), 32);
    assert_eq!(t1.potentially_harmful(), 36);

    // The paper's headline soundness result: every harmful race was
    // classified potentially harmful.
    assert_eq!(t1.missed_harmful(), 0, "a harmful race was filtered as benign");

    // And the headline productivity result: over half of the real benign
    // races are filtered out.
    let real_benign = 32 + t1.benign_flagged_harmful();
    assert!(32 * 2 >= real_benign, "less than half of the benign races were filtered");

    // Table 2 (paper §5.4).
    let t2 = Table2::compute(&report);
    let expect = [
        (BenignCategory::UserConstructedSync, 8),
        (BenignCategory::DoubleCheck, 3),
        (BenignCategory::BothValuesValid, 5),
        (BenignCategory::RedundantWrite, 13),
        (BenignCategory::DisjointBitManipulation, 9),
        (BenignCategory::ApproximateComputation, 23),
    ];
    for (cat, count) in expect {
        assert_eq!(
            t2.counts.get(&cat).copied().unwrap_or(0),
            count,
            "Table 2 mismatch for {cat}:\n{t2}"
        );
    }
    assert_eq!(t2.total(), 61);

    // Figures 3-5 partition the 68 races: 32 + 7 + 29.
    let f3 = Figure::figure3(&report);
    let f4 = Figure::figure4(&report);
    let f5 = Figure::figure5(&report);
    assert_eq!(f3.bars.len(), 32, "Figure 3 bar count");
    assert_eq!(f4.bars.len(), 7, "Figure 4 bar count");
    assert_eq!(f5.bars.len(), 29, "Figure 5 bar count");

    // Figure 3: potentially-benign races never exposed anything.
    assert!(f3.bars.iter().all(|b| b.exposing == 0));
    // Figures 4/5: flagged races have at least one exposing instance.
    assert!(f4.bars.iter().all(|b| b.exposing >= 1));
    assert!(f5.bars.iter().all(|b| b.exposing >= 1));
    // Figure 4's lesson: some harmful race has many instances of which only
    // a fraction exposes it (the paper's "one in ten").
    assert!(
        f4.bars.iter().any(|b| b.instances >= 20 && b.exposing * 2 <= b.instances),
        "expected a harmful race with mostly-benign instances: {f4}"
    );
}

#[test]
fn corpus_is_deterministic() {
    // The whole evaluation is replay-based and seeded: two runs must agree
    // bit for bit.
    let a = run_corpus();
    let b = run_corpus();
    assert_eq!(Table1::compute(&a), Table1::compute(&b));
    assert_eq!(Table2::compute(&a), Table2::compute(&b));
    assert_eq!(a.total_instructions, b.total_instructions);
    for (x, y) in a.merged.races.values().zip(b.merged.races.values()) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.group, y.group);
        assert_eq!(x.counts, y.counts);
    }
}
