//! Corpus-wide predecode equivalence: the decoded-dispatch interpreter
//! ([`tvm::scheduler::run`], driving [`tvm::machine::Machine::step_into`]
//! over the flat [`tvm::predecode::DecodedProgram`] stream) must produce a
//! step-for-step identical [`StepInfo`] stream to the seed interpreter
//! ([`tvm::scheduler::run_reference`], decoding [`tvm::isa::Instr`] on every
//! step) — on every corpus pattern, under more than one schedule.
//!
//! This is the widest pin on the predecode layer: any divergence in operand
//! splitting, branch-target resolution, sequencer-point flagging, fault
//! ordering, or scheduler interaction shows up as the first differing step.

use std::collections::BTreeSet;
use std::sync::Arc;

use tvm::machine::Machine;
use tvm::scheduler::{run, run_reference, RunConfig};
use tvm::{Observer, StepInfo};
use workloads::corpus::{corpus_program, instance_ids};

/// Records every executed step.
struct Collect {
    steps: Vec<StepInfo>,
}

impl Observer for Collect {
    fn on_step(&mut self, _machine: &Machine, info: &StepInfo) {
        self.steps.push(info.clone());
    }
}

/// Runs `config` over `program` with the given driver, returning the full
/// step stream plus the machine's output.
fn trace_with(
    program: &Arc<tvm::Program>,
    config: &RunConfig,
    driver: fn(&mut Machine, &RunConfig, &mut dyn Observer) -> tvm::scheduler::RunSummary,
) -> (Vec<StepInfo>, Vec<u64>) {
    let mut machine = Machine::new(program.clone());
    let mut observer = Collect { steps: Vec::new() };
    driver(&mut machine, config, &mut observer);
    let output = machine.output().iter().map(|o| o.value).collect();
    (observer.steps, output)
}

#[test]
fn decoded_stream_matches_reference_on_whole_corpus() {
    let schedules = [
        ("rr:2", RunConfig::round_robin(2).with_max_steps(400_000)),
        ("chunk:9:1:6", RunConfig::chunked(9, 1, 6).with_max_steps(400_000)),
    ];
    for id in instance_ids() {
        let enabled: BTreeSet<&str> = [id].into_iter().collect();
        let program = corpus_program(&enabled);
        for (name, config) in &schedules {
            let (decoded_steps, decoded_out) = trace_with(&program, config, run);
            let (reference_steps, reference_out) = trace_with(&program, config, run_reference);
            assert_eq!(
                decoded_steps.len(),
                reference_steps.len(),
                "step count diverged for {id} under {name}"
            );
            for (i, (d, r)) in decoded_steps.iter().zip(&reference_steps).enumerate() {
                assert_eq!(d, r, "step {i} diverged for {id} under {name}");
            }
            assert_eq!(decoded_out, reference_out, "output diverged for {id} under {name}");
        }
    }
}

#[test]
fn decoded_stream_matches_reference_on_full_corpus_program() {
    // All patterns enabled at once: cross-pattern interleavings exercise
    // preemption points no single-instance run reaches.
    let enabled: BTreeSet<&str> = instance_ids().into_iter().collect();
    let program = corpus_program(&enabled);
    let config = RunConfig::round_robin(3).with_max_steps(400_000);
    let (decoded_steps, decoded_out) = trace_with(&program, &config, run);
    let (reference_steps, reference_out) = trace_with(&program, &config, run_reference);
    assert_eq!(decoded_steps, reference_steps);
    assert_eq!(decoded_out, reference_out);
}
