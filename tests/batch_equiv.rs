//! Equivalence guarantees of the shared-prefix batched replay engine
//! (`DESIGN.md` §D12): for every corpus pattern and for a seeded fuzz
//! population of generated programs, classifying with
//! [`BatchMode::Shared`] is bit-for-bit identical to the unbatched
//! engine at any job count — same races, same outcomes, same replay and
//! cache accounting. Batching may only change *cost*, never results.

use std::collections::BTreeSet;
use std::sync::Arc;

use bench::genprog;
use idna_replay::recorder::record;
use idna_replay::replayer::{replay, ReplayTrace};
use replay_race::classify::{classify_races, BatchMode, ClassificationResult, ClassifierConfig};
use replay_race::detect::{detect_races, DetectedRaces, DetectorConfig};
use tvm::rng::SplitMix64;
use tvm::scheduler::RunConfig;
use workloads::corpus::{corpus_program, instance_ids};

/// Records and replays one corpus pattern in isolation.
fn pattern_trace(id: &str, schedule: &RunConfig) -> (ReplayTrace, DetectedRaces) {
    let enabled: BTreeSet<&str> = [id].into_iter().collect();
    let program = corpus_program(&enabled);
    let recording = record(&program, schedule);
    let trace = replay(&program, &recording.log).expect("fresh recordings replay");
    let detected = detect_races(&trace, &DetectorConfig::default());
    (trace, detected)
}

fn classify_with(
    trace: &ReplayTrace,
    detected: &DetectedRaces,
    jobs: usize,
    batching: BatchMode,
) -> ClassificationResult {
    let config = ClassifierConfig { jobs, batching, ..ClassifierConfig::default() };
    classify_races(trace, detected, &config)
}

/// Byte-equality of everything the classification *means*: the races with
/// their instance outcomes, plus the replay and cache accounting. The
/// batch counters are cost telemetry and deliberately excluded.
fn assert_identical(a: &ClassificationResult, b: &ClassificationResult, what: &str) {
    assert_eq!(a.races, b.races, "{what}: classified races differ");
    assert_eq!(a.vproc_replays, b.vproc_replays, "{what}: replay counts differ");
    assert_eq!(a.cache_stats, b.cache_stats, "{what}: cache accounting differs");
    assert_eq!(a.log_damaged_races, b.log_damaged_races, "{what}: damage accounting differs");
}

/// The schedules the corpus matrix runs under (mirrors
/// `classify_determinism`): one deterministic round-robin and one
/// chunked-random interleaving.
fn schedules() -> Vec<RunConfig> {
    vec![
        RunConfig::round_robin(2).with_max_steps(400_000),
        RunConfig::chunked(9, 1, 6).with_max_steps(400_000),
    ]
}

#[test]
fn every_pattern_classifies_identically_batched_and_unbatched() {
    for id in instance_ids() {
        for schedule in schedules() {
            let (trace, detected) = pattern_trace(id, &schedule);
            let unbatched = classify_with(&trace, &detected, 1, BatchMode::Off);
            assert_eq!(unbatched.batch_stats.batches, 0, "{id}: Off must not batch");
            assert_eq!(unbatched.batch_stats.forks, 0, "{id}: Off must not fork");
            let mut counters = Vec::new();
            for jobs in [1, 2, 0] {
                let batched = classify_with(&trace, &detected, jobs, BatchMode::Shared);
                assert_identical(&unbatched, &batched, &format!("{id} jobs={jobs}"));
                counters.push(batched.batch_stats);
            }
            // The cost counters themselves are deterministic at any job
            // count: batches form in the planner's sequential walk.
            assert_eq!(counters[0], counters[1], "{id}: batch counters differ at jobs=2");
            assert_eq!(counters[0], counters[2], "{id}: batch counters differ at jobs=0");
        }
    }
}

#[test]
fn generated_programs_classify_identically_batched_and_unbatched() {
    // Seeded differential fuzz over handoff-shaped programs: racy flag
    // and data traffic with loops, so racing indexes spread across each
    // region and the checkpoint chain actually gets exercised.
    let mut rng = SplitMix64::new(0xBA7C4);
    let mut batches = 0u64;
    let mut forks = 0u64;
    for round in 0..300u64 {
        let program = Arc::new(genprog::generate(&mut rng));
        // One schedule per round keeps the loop fast while still covering
        // both schedule families over the population.
        let schedule = &genprog::schedules(round)[(round % 2) as usize];
        let recording = record(&program, schedule);
        let trace = replay(&program, &recording.log).expect("generated programs replay");
        let detected = detect_races(&trace, &DetectorConfig::default());
        let unbatched = classify_with(&trace, &detected, 1, BatchMode::Off);
        for jobs in [1, 2] {
            let batched = classify_with(&trace, &detected, jobs, BatchMode::Shared);
            assert_identical(&unbatched, &batched, &format!("round {round} jobs={jobs}"));
            batches += batched.batch_stats.batches;
            forks += batched.batch_stats.forks;
        }
    }
    assert!(batches > 0, "the fuzz population never formed a batch");
    assert!(forks > 0, "the fuzz population never forked from a checkpoint");
}
